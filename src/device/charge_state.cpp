#include "device/charge_state.hpp"

#include "common/assert.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"

#include <cmath>
#include <limits>

namespace qvg {

std::vector<int> ground_state_exhaustive(const CapacitanceModel& model,
                                         const std::vector<double>& drives,
                                         int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<int> best(n, 0);
  double best_energy = model.energy(best, drives);

  // Odometer-style enumeration of {0..max}^n.
  while (true) {
    std::size_t d = 0;
    while (d < n) {
      if (occupation[d] < max_electrons_per_dot) {
        ++occupation[d];
        break;
      }
      occupation[d] = 0;
      ++d;
    }
    if (d == n) break;  // wrapped around: enumeration complete
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

namespace {

/// One ICM relaxation to a fixed point, in place, on delta energies. For dot
/// d with the others fixed, every candidate occupancy ranks by the partial
/// energy g(c) = Ec_d/2 * c^2 - c * (drives[d] - coupling[d]) where
/// coupling[d] = sum_k Em_dk * occ_k — the rest of the full energy is a
/// constant across candidates, so no model.energy() recompute and no trial
/// vector copy are needed. An accepted move updates the n coupling sums.
/// `coupling` must be sized n; it is (re)initialized from `occupation`.
/// Sweep order and tie-breaking (smallest occupancy among exact ties) match
/// ground_state_greedy_reference.
void icm_relax(const CapacitanceModel& model, const std::vector<double>& drives,
               int max_electrons_per_dot, std::vector<int>& occupation,
               std::vector<double>& coupling) {
  const std::size_t n = model.num_dots();
  const Matrix& mutual = model.mutual_coupling();
  const std::vector<double>& charging = model.charging_energies();

  // The init dot product stays scalar: its k-ascending accumulation order is
  // part of the fixed-point's bit-exact agreement with the copy-based
  // reference sweep, and reassociating it would perturb exact ties.
  for (std::size_t d = 0; d < n; ++d) {
    const double* row = mutual.row(d);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      acc += row[k] * static_cast<double>(occupation[k]);
    coupling[d] = acc;
  }

  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      const double t = drives[d] - coupling[d];
      const double ec = charging[d];
      double best_g = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        const auto c = static_cast<double>(nd);
        const double g = 0.5 * ec * c * c - c * t;
        if (g < best_g) {
          best_g = g;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        // Element-wise in k, so the lane-parallel form is bit-identical to
        // the scalar update (each coupling[k] sees the same two operations).
        const double shift =
            static_cast<double>(best_nd) - static_cast<double>(occupation[d]);
        occupation[d] = best_nd;
        const double* row = mutual.row(d);
        constexpr std::size_t kLanes = simd::VecD::kLanes;
        const simd::VecD vshift = simd::VecD::broadcast(shift);
        std::size_t k = 0;
        for (; k + kLanes <= n; k += kLanes)
          (simd::VecD::load(coupling.data() + k) +
           simd::VecD::load(row + k) * vshift)
              .store(coupling.data() + k);
        for (; k < n; ++k) coupling[k] += row[k] * shift;
        changed = true;
      }
    }
  }
}

}  // namespace

std::vector<int> ground_state_greedy(const CapacitanceModel& model,
                                     const std::vector<double>& drives,
                                     int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<double> coupling(n, 0.0);
  icm_relax(model, drives, max_electrons_per_dot, occupation, coupling);
  return occupation;
}

std::vector<int> ground_state_greedy_reference(const CapacitanceModel& model,
                                               const std::vector<double>& drives,
                                               int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);

  // Iterated conditional modes: optimize one dot holding the others fixed.
  // Converges because each accepted move strictly lowers the energy and the
  // state space is finite.
  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      double best_e = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      std::vector<int> trial = occupation;
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        trial[d] = nd;
        const double e = model.energy(trial, drives);
        if (e < best_e) {
          best_e = e;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        occupation[d] = best_nd;
        changed = true;
      }
    }
  }
  return occupation;
}

std::vector<int> ground_state_greedy_multistart(
    const CapacitanceModel& model, const std::vector<double>& drives,
    int max_electrons_per_dot, int restarts, std::uint64_t seed) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(restarts >= 1);
  const std::size_t n = model.num_dots();
  Rng rng(seed);

  std::vector<int> occupation(n, 0);
  std::vector<double> coupling(n, 0.0);
  std::vector<int> best;
  double best_energy = std::numeric_limits<double>::infinity();

  for (int r = 0; r < restarts; ++r) {
    if (r == 0) {
      std::fill(occupation.begin(), occupation.end(), 0);
    } else {
      for (auto& c : occupation)
        c = static_cast<int>(rng.uniform_int(0, max_electrons_per_dot));
    }
    icm_relax(model, drives, max_electrons_per_dot, occupation, coupling);
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

void IncrementalGroundStateSolver::bind(const CapacitanceModel& model) {
  model_ = &model;
  n_ = model.num_dots();
  occupation_.assign(n_, 0);
  best_.assign(n_, 0);
  coupling_.assign(n_, 0.0);
  bound_scratch_.assign(n_, 0.0);
  charging_ = model.charging_energies();
  mutual_flat_.resize(n_ * n_);
  const Matrix& mutual = model.mutual_coupling();
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < n_; ++k)
      mutual_flat_[i * n_ + k] = mutual(i, k);
  q0_.clear();
  pow_m_.clear();
}

void IncrementalGroundStateSolver::seed_incumbent(
    const std::vector<double>& drives, const std::vector<int>* warm_start) {
  // Start from the all-zero state (energy 0), the reference solver's
  // initial incumbent. The running best is tracked as an enumeration index
  // (digit j of base m = dot j's occupancy) — no vector copies in the loop.
  std::fill(occupation_.begin(), occupation_.end(), 0);
  std::fill(coupling_.begin(), coupling_.end(), 0.0);
  base_ = 0.0;  // energy of the current outer state with dot 0 empty
  best_energy_ = 0.0;
  best_index_ = 0;
  warm_is_best_ = false;
  stats_ = SolveStats{};

  if (warm_start != nullptr && !warm_start->empty()) {
    QVG_EXPECTS(warm_start->size() == n_);
    // Inline quadratic energy against the flat parameter copies (cheaper
    // than CapacitanceModel::energy, which re-validates per call).
    double warm_energy = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const auto wj = static_cast<double>((*warm_start)[j]);
      warm_energy += 0.5 * charging_[j] * wj * wj - wj * drives[j];
      const double* row = mutual_flat_.data() + j * n_;
      for (std::size_t k = j + 1; k < n_; ++k)
        warm_energy += row[k] * wj * static_cast<double>((*warm_start)[k]);
    }
    if (warm_energy < best_energy_) {
      best_energy_ = warm_energy;
      warm_is_best_ = true;
    }
  }
}

void IncrementalGroundStateSolver::apply_outer_move(
    std::size_t j, int b, const std::vector<double>& drives) {
  // dE = Ec_j/2 (b^2 - a^2) - (b - a) drives[j] + (b - a) coupling_[j].
  const auto a = static_cast<double>(occupation_[j]);
  const auto db = static_cast<double>(b);
  base_ += 0.5 * charging_[j] * (db * db - a * a) - (db - a) * drives[j] +
           (db - a) * coupling_[j];
  occupation_[j] = b;
  // coupling_[k] += row[k] * shift is element-wise in k: the SIMD form does
  // the same multiply and add per lane, so it is bit-identical to the scalar
  // loop regardless of lane width.
  const double shift = db - a;
  const double* row = mutual_flat_.data() + j * n_;
  constexpr std::size_t kLanes = simd::VecD::kLanes;
  const simd::VecD vshift = simd::VecD::broadcast(shift);
  std::size_t k = 0;
  for (; k + kLanes <= n_; k += kLanes)
    (simd::VecD::load(coupling_.data() + k) +
     simd::VecD::load(row + k) * vshift)
        .store(coupling_.data() + k);
  for (; k < n_; ++k) coupling_[k] += row[k] * shift;
}

double IncrementalGroundStateSolver::free_dot_min(
    std::size_t d, const std::vector<double>& drives,
    int max_electrons_per_dot) const {
  // min over integer c in [0, max] of g(c) = Ec_d/2 c^2 - c t. g is convex
  // (Ec_d > 0), so the minimum sits at one of the two integers bracketing
  // the continuous minimizer t / Ec_d, clamped into range: O(1).
  const double t = drives[d] - coupling_[d];
  const double cont = t / charging_[d];
  const double max_c = static_cast<double>(max_electrons_per_dot);
  auto g = [&](double c) { return 0.5 * charging_[d] * c * c - c * t; };
  const double lo = std::min(std::max(std::floor(cont), 0.0), max_c);
  const double hi = std::min(lo + 1.0, max_c);
  return std::min(g(lo), g(hi));
}

void IncrementalGroundStateSolver::inner_sweep(const std::vector<double>& drives,
                                               std::size_t m,
                                               std::uint64_t index_base) {
  // Dot 0 is the innermost odometer digit: while it spins, no coupling sum
  // changes (its own coupling_[0] depends only on the other dots), so each
  // inner state costs O(1) — a table lookup and one fused multiply-add.
  // Enumeration order (and therefore tie-breaking) matches the reference
  // odometer exactly.
  const double e0 = drives[0] - coupling_[0];
  for (std::size_t c = 0; c < m; ++c) {
    const double e = base_ + q0_[c] - static_cast<double>(c) * e0;
    if (e < best_energy_) {
      best_energy_ = e;
      best_index_ = index_base + c;
      warm_is_best_ = false;
    }
  }
  stats_.states_visited += m;
}

void IncrementalGroundStateSolver::descend(std::size_t level,
                                           std::uint64_t index_base,
                                           const std::vector<double>& drives,
                                           int max_electrons_per_dot) {
  // Invariant: dots level..n-1 hold their fixed digits, dots 0..level-1 are
  // all zero, and base_ is the energy of exactly that configuration.
  //
  // Lower bound on any completion of the free dots: every mutual coupling is
  // >= 0 and occupations are >= 0, so dropping the free-free coupling terms
  // only lowers the energy and the remaining free-dot contributions decouple
  // into independent one-dot convex minimizations against the fixed-dot
  // coupling sums. If even that bound cannot beat the incumbent, no state in
  // the m^level subtree can, and — because the incumbent only ever updates
  // on strictly smaller energies — skipping it preserves enumeration-order
  // tie-breaking exactly.
  // The per-dot bounds are element-wise in d (drives, coupling and charging
  // are parallel arrays — SoA), so they compute lane-parallel; each lane runs
  // the exact free_dot_min operation sequence, so scratch[d] is bit-identical
  // to the scalar call. The reduction then runs scalar in d-ascending order
  // from base_, preserving the prune and tie-break decisions bit-exactly.
  double lower = base_;
  {
    constexpr std::size_t kLanes = simd::VecD::kLanes;
    const double max_c = static_cast<double>(max_electrons_per_dot);
    double* scratch = bound_scratch_.data();
    std::size_t d = 0;
    for (; d + kLanes <= level; d += kLanes) {
      const simd::VecD t = simd::VecD::load(drives.data() + d) -
                           simd::VecD::load(coupling_.data() + d);
      const simd::VecD ec = simd::VecD::load(charging_.data() + d);
      const simd::VecD lo =
          simd::min(simd::max(simd::floor(t / ec), simd::VecD::broadcast(0.0)),
                    simd::VecD::broadcast(max_c));
      const simd::VecD hi = simd::min(lo + simd::VecD::broadcast(1.0),
                                      simd::VecD::broadcast(max_c));
      const simd::VecD half_ec = simd::VecD::broadcast(0.5) * ec;
      simd::min(half_ec * lo * lo - lo * t, half_ec * hi * hi - hi * t)
          .store(scratch + d);
    }
    for (; d < level; ++d)
      scratch[d] = free_dot_min(d, drives, max_electrons_per_dot);
    for (std::size_t k = 0; k < level; ++k) lower += scratch[k];
  }
  if (lower >= best_energy_) {
    ++stats_.subtrees_pruned;
    stats_.states_pruned += pow_m_[level];
    return;
  }

  if (level == 1) {
    inner_sweep(drives, pow_m_[1], index_base);
    return;
  }

  // Walk digit level-1 through 0..max (it is already 0 on entry) and wrap it
  // back to 0 on exit — the same move sequence the flat odometer performs.
  const std::size_t digit = level - 1;
  for (int c = 0; c <= max_electrons_per_dot; ++c) {
    if (c > 0) apply_outer_move(digit, c, drives);
    descend(digit, index_base + static_cast<std::uint64_t>(c) * pow_m_[digit],
            drives, max_electrons_per_dot);
  }
  apply_outer_move(digit, 0, drives);
}

void IncrementalGroundStateSolver::solve_full_enumeration(
    const std::vector<double>& drives, int max_electrons_per_dot) {
  const std::size_t m = pow_m_[1];
  std::uint64_t index_base = 0;  // enumeration index of (0, outer...)
  while (true) {
    inner_sweep(drives, m, index_base);
    // Advance the outer odometer (dots 1..n-1).
    std::size_t d = 1;
    while (d < n_ && occupation_[d] == max_electrons_per_dot) {
      apply_outer_move(d, 0, drives);
      ++d;
    }
    if (d >= n_) break;
    apply_outer_move(d, occupation_[d] + 1, drives);
    index_base += m;
  }
}

void IncrementalGroundStateSolver::finish(std::size_t m,
                                          const std::vector<int>* warm_start) {
  if (warm_is_best_) {
    best_ = *warm_start;
  } else {
    std::uint64_t index = best_index_;
    for (std::size_t j = 0; j < n_; ++j) {
      best_[j] = static_cast<int>(index % m);
      index /= m;
    }
  }
}

const std::vector<int>& IncrementalGroundStateSolver::solve(
    const std::vector<double>& drives, int max_electrons_per_dot,
    const std::vector<int>* warm_start, ExhaustiveStrategy strategy) {
  QVG_EXPECTS(model_ != nullptr);
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(drives.size() == n_);
  const auto m = static_cast<std::size_t>(max_electrons_per_dot) + 1;

  if (q0_.size() != m) {
    q0_.resize(m);
    for (std::size_t c = 0; c < m; ++c)
      q0_[c] = 0.5 * charging_[0] * static_cast<double>(c) *
               static_cast<double>(c);
    pow_m_.clear();
  }
  if (pow_m_.size() != n_ + 1) {
    pow_m_.resize(n_ + 1);
    pow_m_[0] = 1;
    for (std::size_t j = 1; j <= n_; ++j) pow_m_[j] = pow_m_[j - 1] * m;
  }

  seed_incumbent(drives, warm_start);
  if (strategy == ExhaustiveStrategy::kBranchAndBound)
    descend(n_, 0, drives, max_electrons_per_dot);
  else
    solve_full_enumeration(drives, max_electrons_per_dot);
  finish(m, warm_start);
  return best_;
}

std::vector<int> ground_state(const CapacitanceModel& model,
                              const std::vector<double>& gate_voltages,
                              const ChargeSolverOptions& options) {
  const auto drives = model.dot_drives(gate_voltages);
  if (model.num_dots() <= options.exhaustive_dot_limit) {
    IncrementalGroundStateSolver solver(model);
    return solver.solve(drives, options.max_electrons_per_dot);
  }
  return ground_state_greedy(model, drives, options.max_electrons_per_dot);
}

}  // namespace qvg
