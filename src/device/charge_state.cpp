#include "device/charge_state.hpp"

#include "common/assert.hpp"

#include <limits>

namespace qvg {

std::vector<int> ground_state_exhaustive(const CapacitanceModel& model,
                                         const std::vector<double>& drives,
                                         int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<int> best(n, 0);
  double best_energy = model.energy(best, drives);

  // Odometer-style enumeration of {0..max}^n.
  while (true) {
    std::size_t d = 0;
    while (d < n) {
      if (occupation[d] < max_electrons_per_dot) {
        ++occupation[d];
        break;
      }
      occupation[d] = 0;
      ++d;
    }
    if (d == n) break;  // wrapped around: enumeration complete
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

std::vector<int> ground_state_greedy(const CapacitanceModel& model,
                                     const std::vector<double>& drives,
                                     int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);

  // Iterated conditional modes: optimize one dot holding the others fixed.
  // Converges because each accepted move strictly lowers the energy and the
  // state space is finite.
  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      double best_e = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      std::vector<int> trial = occupation;
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        trial[d] = nd;
        const double e = model.energy(trial, drives);
        if (e < best_e) {
          best_e = e;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        occupation[d] = best_nd;
        changed = true;
      }
    }
  }
  return occupation;
}

std::vector<int> ground_state(const CapacitanceModel& model,
                              const std::vector<double>& gate_voltages,
                              const ChargeSolverOptions& options) {
  const auto drives = model.dot_drives(gate_voltages);
  if (model.num_dots() <= options.exhaustive_dot_limit)
    return ground_state_exhaustive(model, drives, options.max_electrons_per_dot);
  return ground_state_greedy(model, drives, options.max_electrons_per_dot);
}

}  // namespace qvg
