#include "device/charge_state.hpp"

#include "common/assert.hpp"
#include "common/random.hpp"
#include "common/simd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qvg {

std::vector<int> ground_state_exhaustive(const CapacitanceModel& model,
                                         const std::vector<double>& drives,
                                         int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<int> best(n, 0);
  double best_energy = model.energy(best, drives);

  // Odometer-style enumeration of {0..max}^n.
  while (true) {
    std::size_t d = 0;
    while (d < n) {
      if (occupation[d] < max_electrons_per_dot) {
        ++occupation[d];
        break;
      }
      occupation[d] = 0;
      ++d;
    }
    if (d == n) break;  // wrapped around: enumeration complete
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

namespace {

/// One ICM relaxation to a fixed point, in place, on delta energies. For dot
/// d with the others fixed, every candidate occupancy ranks by the partial
/// energy g(c) = Ec_d/2 * c^2 - c * (drives[d] - coupling[d]) where
/// coupling[d] = sum_k Em_dk * occ_k — the rest of the full energy is a
/// constant across candidates, so no model.energy() recompute and no trial
/// vector copy are needed. An accepted move updates the n coupling sums.
/// `coupling` must be sized n; it is (re)initialized from `occupation`.
/// Sweep order and tie-breaking (smallest occupancy among exact ties) match
/// ground_state_greedy_reference.
void icm_relax(const CapacitanceModel& model, const std::vector<double>& drives,
               int max_electrons_per_dot, std::vector<int>& occupation,
               std::vector<double>& coupling) {
  const std::size_t n = model.num_dots();
  const Matrix& mutual = model.mutual_coupling();
  const std::vector<double>& charging = model.charging_energies();

  // The init dot product stays scalar: its k-ascending accumulation order is
  // part of the fixed-point's bit-exact agreement with the copy-based
  // reference sweep, and reassociating it would perturb exact ties.
  for (std::size_t d = 0; d < n; ++d) {
    const double* row = mutual.row(d);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      acc += row[k] * static_cast<double>(occupation[k]);
    coupling[d] = acc;
  }

  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      const double t = drives[d] - coupling[d];
      const double ec = charging[d];
      double best_g = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        const auto c = static_cast<double>(nd);
        const double g = 0.5 * ec * c * c - c * t;
        if (g < best_g) {
          best_g = g;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        // Element-wise in k, so the lane-parallel form is bit-identical to
        // the scalar update (each coupling[k] sees the same two operations).
        const double shift =
            static_cast<double>(best_nd) - static_cast<double>(occupation[d]);
        occupation[d] = best_nd;
        const double* row = mutual.row(d);
        constexpr std::size_t kLanes = simd::VecD::kLanes;
        const simd::VecD vshift = simd::VecD::broadcast(shift);
        std::size_t k = 0;
        for (; k + kLanes <= n; k += kLanes)
          (simd::VecD::load(coupling.data() + k) +
           simd::VecD::load(row + k) * vshift)
              .store(coupling.data() + k);
        for (; k < n; ++k) coupling[k] += row[k] * shift;
        changed = true;
      }
    }
  }
}

}  // namespace

std::vector<int> ground_state_greedy(const CapacitanceModel& model,
                                     const std::vector<double>& drives,
                                     int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<double> coupling(n, 0.0);
  icm_relax(model, drives, max_electrons_per_dot, occupation, coupling);
  return occupation;
}

std::vector<int> ground_state_greedy_reference(const CapacitanceModel& model,
                                               const std::vector<double>& drives,
                                               int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);

  // Iterated conditional modes: optimize one dot holding the others fixed.
  // Converges because each accepted move strictly lowers the energy and the
  // state space is finite.
  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      double best_e = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      std::vector<int> trial = occupation;
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        trial[d] = nd;
        const double e = model.energy(trial, drives);
        if (e < best_e) {
          best_e = e;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        occupation[d] = best_nd;
        changed = true;
      }
    }
  }
  return occupation;
}

std::vector<int> ground_state_greedy_from(const CapacitanceModel& model,
                                          const std::vector<double>& drives,
                                          int max_electrons_per_dot,
                                          std::vector<int> start) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(start.size() == model.num_dots());
  std::vector<double> coupling(model.num_dots(), 0.0);
  icm_relax(model, drives, max_electrons_per_dot, start, coupling);
  return start;
}

std::vector<int> ground_state_greedy_multistart(
    const CapacitanceModel& model, const std::vector<double>& drives,
    int max_electrons_per_dot, int restarts, std::uint64_t seed) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(restarts >= 1);
  const std::size_t n = model.num_dots();
  const Rng base(seed);

  std::vector<int> occupation(n, 0);
  std::vector<double> coupling(n, 0.0);
  std::vector<int> best;
  double best_energy = std::numeric_limits<double>::infinity();

  for (int r = 0; r < restarts; ++r) {
    if (r == 0) {
      std::fill(occupation.begin(), occupation.end(), 0);
    } else {
      // Stream-per-restart: restart k's starting state is a function of
      // (seed, k) alone, never of how many restarts run in total, so
      // multistart(R + j) replays multistart(R)'s starts exactly and then
      // adds j new ones.
      Rng stream = base.split(static_cast<std::uint64_t>(r));
      for (auto& c : occupation)
        c = static_cast<int>(stream.uniform_int(0, max_electrons_per_dot));
    }
    icm_relax(model, drives, max_electrons_per_dot, occupation, coupling);
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

void DeltaMoveEvaluator::bind(const CapacitanceModel& model) {
  n_ = model.num_dots();
  occupation_.assign(n_, 0);
  drives_.assign(n_, 0.0);
  coupling_.assign(n_, 0.0);
  charging_ = model.charging_energies();
  mutual_flat_.resize(n_ * n_);
  const Matrix& mutual = model.mutual_coupling();
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < n_; ++k)
      mutual_flat_[i * n_ + k] = mutual(i, k);
  energy_ = 0.0;
}

void DeltaMoveEvaluator::set_state(const std::vector<int>& occupation,
                                   const std::vector<double>& drives) {
  QVG_EXPECTS(bound());
  QVG_EXPECTS(occupation.size() == n_);
  QVG_EXPECTS(drives.size() == n_);
  occupation_ = occupation;
  drives_ = drives;
  double e = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    const auto oj = static_cast<double>(occupation_[j]);
    e += 0.5 * charging_[j] * oj * oj - oj * drives_[j];
    const double* row = mutual_flat_.data() + j * n_;
    double acc = 0.0;
    for (std::size_t k = 0; k < n_; ++k)
      acc += row[k] * static_cast<double>(occupation_[k]);
    coupling_[j] = acc;
    for (std::size_t k = j + 1; k < n_; ++k)
      e += row[k] * oj * static_cast<double>(occupation_[k]);
  }
  energy_ = e;
}

double DeltaMoveEvaluator::delta_single(std::size_t d, int c) const {
  // dE = Ec_d/2 (b^2 - a^2) - (b - a) drives[d] + (b - a) coupling[d].
  const auto a = static_cast<double>(occupation_[d]);
  const auto b = static_cast<double>(c);
  return 0.5 * charging_[d] * (b * b - a * a) - (b - a) * drives_[d] +
         (b - a) * coupling_[d];
}

double DeltaMoveEvaluator::delta_swap(std::size_t a, std::size_t b) const {
  // Two single-dot deltas evaluated against the *current* coupling sums both
  // count the mutual(a, b) cross term as if the other dot had not moved;
  // exchanging occupancies leaves that term unchanged, so subtract the
  // double-counted piece: Em_ab * (n_a - n_b)^2.
  const double diff =
      static_cast<double>(occupation_[a]) - static_cast<double>(occupation_[b]);
  return delta_single(a, occupation_[b]) + delta_single(b, occupation_[a]) -
         mutual_flat_[a * n_ + b] * diff * diff;
}

void DeltaMoveEvaluator::apply_single(std::size_t d, int c) {
  energy_ += delta_single(d, c);
  const double shift =
      static_cast<double>(c) - static_cast<double>(occupation_[d]);
  occupation_[d] = c;
  // Element-wise in k: the lane-parallel form is bit-identical to the scalar
  // loop (same multiply and add per element).
  const double* row = mutual_flat_.data() + d * n_;
  constexpr std::size_t kLanes = simd::VecD::kLanes;
  const simd::VecD vshift = simd::VecD::broadcast(shift);
  std::size_t k = 0;
  for (; k + kLanes <= n_; k += kLanes)
    (simd::VecD::load(coupling_.data() + k) +
     simd::VecD::load(row + k) * vshift)
        .store(coupling_.data() + k);
  for (; k < n_; ++k) coupling_[k] += row[k] * shift;
}

void DeltaMoveEvaluator::apply_swap(std::size_t a, std::size_t b) {
  // Sequential application is exact: the second delta is evaluated against
  // the coupling sums already updated by the first move.
  const int na = occupation_[a];
  const int nb = occupation_[b];
  apply_single(a, nb);
  apply_single(b, na);
}

void IncrementalGroundStateSolver::bind(const CapacitanceModel& model) {
  model_ = &model;
  n_ = model.num_dots();
  occupation_.assign(n_, 0);
  best_.assign(n_, 0);
  coupling_.assign(n_, 0.0);
  bound_scratch_.assign(n_, 0.0);
  charging_ = model.charging_energies();
  mutual_flat_.resize(n_ * n_);
  const Matrix& mutual = model.mutual_coupling();
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < n_; ++k)
      mutual_flat_[i * n_ + k] = mutual(i, k);
  q0_.clear();
  pow_m_.clear();
}

void IncrementalGroundStateSolver::seed_incumbent(
    const std::vector<double>& drives, const std::vector<int>* warm_start) {
  // Start from the all-zero state (energy 0), the reference solver's
  // initial incumbent. The running best is tracked as an enumeration index
  // (digit j of base m = dot j's occupancy) — no vector copies in the loop.
  std::fill(occupation_.begin(), occupation_.end(), 0);
  std::fill(coupling_.begin(), coupling_.end(), 0.0);
  base_ = 0.0;  // energy of the current outer state with dot 0 empty
  best_energy_ = 0.0;
  best_index_ = 0;
  warm_is_best_ = false;
  stats_ = SolveStats{};

  if (warm_start != nullptr && !warm_start->empty()) {
    QVG_EXPECTS(warm_start->size() == n_);
    // Inline quadratic energy against the flat parameter copies (cheaper
    // than CapacitanceModel::energy, which re-validates per call).
    double warm_energy = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      const auto wj = static_cast<double>((*warm_start)[j]);
      warm_energy += 0.5 * charging_[j] * wj * wj - wj * drives[j];
      const double* row = mutual_flat_.data() + j * n_;
      for (std::size_t k = j + 1; k < n_; ++k)
        warm_energy += row[k] * wj * static_cast<double>((*warm_start)[k]);
    }
    if (warm_energy < best_energy_) {
      best_energy_ = warm_energy;
      warm_is_best_ = true;
    }
  }
}

void IncrementalGroundStateSolver::apply_outer_move(
    std::size_t j, int b, const std::vector<double>& drives) {
  // dE = Ec_j/2 (b^2 - a^2) - (b - a) drives[j] + (b - a) coupling_[j].
  const auto a = static_cast<double>(occupation_[j]);
  const auto db = static_cast<double>(b);
  base_ += 0.5 * charging_[j] * (db * db - a * a) - (db - a) * drives[j] +
           (db - a) * coupling_[j];
  occupation_[j] = b;
  // coupling_[k] += row[k] * shift is element-wise in k: the SIMD form does
  // the same multiply and add per lane, so it is bit-identical to the scalar
  // loop regardless of lane width.
  const double shift = db - a;
  const double* row = mutual_flat_.data() + j * n_;
  constexpr std::size_t kLanes = simd::VecD::kLanes;
  const simd::VecD vshift = simd::VecD::broadcast(shift);
  std::size_t k = 0;
  for (; k + kLanes <= n_; k += kLanes)
    (simd::VecD::load(coupling_.data() + k) +
     simd::VecD::load(row + k) * vshift)
        .store(coupling_.data() + k);
  for (; k < n_; ++k) coupling_[k] += row[k] * shift;
}

double IncrementalGroundStateSolver::free_dot_min(
    std::size_t d, const std::vector<double>& drives,
    int max_electrons_per_dot) const {
  // min over integer c in [0, max] of g(c) = Ec_d/2 c^2 - c t. g is convex
  // (Ec_d > 0), so the minimum sits at one of the two integers bracketing
  // the continuous minimizer t / Ec_d, clamped into range: O(1).
  const double t = drives[d] - coupling_[d];
  const double cont = t / charging_[d];
  const double max_c = static_cast<double>(max_electrons_per_dot);
  auto g = [&](double c) { return 0.5 * charging_[d] * c * c - c * t; };
  const double lo = std::min(std::max(std::floor(cont), 0.0), max_c);
  const double hi = std::min(lo + 1.0, max_c);
  return std::min(g(lo), g(hi));
}

void IncrementalGroundStateSolver::inner_sweep(const std::vector<double>& drives,
                                               std::size_t m,
                                               std::uint64_t index_base) {
  // Dot 0 is the innermost odometer digit: while it spins, no coupling sum
  // changes (its own coupling_[0] depends only on the other dots), so each
  // inner state costs O(1) — a table lookup and one fused multiply-add.
  // Enumeration order (and therefore tie-breaking) matches the reference
  // odometer exactly.
  const double e0 = drives[0] - coupling_[0];
  for (std::size_t c = 0; c < m; ++c) {
    const double e = base_ + q0_[c] - static_cast<double>(c) * e0;
    if (e < best_energy_) {
      best_energy_ = e;
      best_index_ = index_base + c;
      warm_is_best_ = false;
    }
  }
  stats_.states_visited += m;
}

void IncrementalGroundStateSolver::descend(std::size_t level,
                                           std::uint64_t index_base,
                                           const std::vector<double>& drives,
                                           int max_electrons_per_dot) {
  // Invariant: dots level..n-1 hold their fixed digits, dots 0..level-1 are
  // all zero, and base_ is the energy of exactly that configuration.
  //
  // Lower bound on any completion of the free dots: every mutual coupling is
  // >= 0 and occupations are >= 0, so dropping the free-free coupling terms
  // only lowers the energy and the remaining free-dot contributions decouple
  // into independent one-dot convex minimizations against the fixed-dot
  // coupling sums. If even that bound cannot beat the incumbent, no state in
  // the m^level subtree can, and — because the incumbent only ever updates
  // on strictly smaller energies — skipping it preserves enumeration-order
  // tie-breaking exactly.
  // The per-dot bounds are element-wise in d (drives, coupling and charging
  // are parallel arrays — SoA), so they compute lane-parallel; each lane runs
  // the exact free_dot_min operation sequence, so scratch[d] is bit-identical
  // to the scalar call. The reduction then runs scalar in d-ascending order
  // from base_, preserving the prune and tie-break decisions bit-exactly.
  double lower = base_;
  {
    constexpr std::size_t kLanes = simd::VecD::kLanes;
    const double max_c = static_cast<double>(max_electrons_per_dot);
    double* scratch = bound_scratch_.data();
    std::size_t d = 0;
    for (; d + kLanes <= level; d += kLanes) {
      const simd::VecD t = simd::VecD::load(drives.data() + d) -
                           simd::VecD::load(coupling_.data() + d);
      const simd::VecD ec = simd::VecD::load(charging_.data() + d);
      const simd::VecD lo =
          simd::min(simd::max(simd::floor(t / ec), simd::VecD::broadcast(0.0)),
                    simd::VecD::broadcast(max_c));
      const simd::VecD hi = simd::min(lo + simd::VecD::broadcast(1.0),
                                      simd::VecD::broadcast(max_c));
      const simd::VecD half_ec = simd::VecD::broadcast(0.5) * ec;
      simd::min(half_ec * lo * lo - lo * t, half_ec * hi * hi - hi * t)
          .store(scratch + d);
    }
    for (; d < level; ++d)
      scratch[d] = free_dot_min(d, drives, max_electrons_per_dot);
    for (std::size_t k = 0; k < level; ++k) lower += scratch[k];
  }
  if (lower >= best_energy_) {
    ++stats_.subtrees_pruned;
    stats_.states_pruned += pow_m_[level];
    return;
  }

  if (level == 1) {
    inner_sweep(drives, pow_m_[1], index_base);
    return;
  }

  // Walk digit level-1 through 0..max (it is already 0 on entry) and wrap it
  // back to 0 on exit — the same move sequence the flat odometer performs.
  const std::size_t digit = level - 1;
  for (int c = 0; c <= max_electrons_per_dot; ++c) {
    if (c > 0) apply_outer_move(digit, c, drives);
    descend(digit, index_base + static_cast<std::uint64_t>(c) * pow_m_[digit],
            drives, max_electrons_per_dot);
  }
  apply_outer_move(digit, 0, drives);
}

void IncrementalGroundStateSolver::solve_full_enumeration(
    const std::vector<double>& drives, int max_electrons_per_dot) {
  const std::size_t m = pow_m_[1];
  std::uint64_t index_base = 0;  // enumeration index of (0, outer...)
  while (true) {
    inner_sweep(drives, m, index_base);
    // Advance the outer odometer (dots 1..n-1).
    std::size_t d = 1;
    while (d < n_ && occupation_[d] == max_electrons_per_dot) {
      apply_outer_move(d, 0, drives);
      ++d;
    }
    if (d >= n_) break;
    apply_outer_move(d, occupation_[d] + 1, drives);
    index_base += m;
  }
}

void IncrementalGroundStateSolver::finish(std::size_t m,
                                          const std::vector<int>* warm_start) {
  if (warm_is_best_) {
    best_ = *warm_start;
  } else {
    std::uint64_t index = best_index_;
    for (std::size_t j = 0; j < n_; ++j) {
      best_[j] = static_cast<int>(index % m);
      index /= m;
    }
  }
}

const std::vector<int>& IncrementalGroundStateSolver::solve(
    const std::vector<double>& drives, int max_electrons_per_dot,
    const std::vector<int>* warm_start, ExhaustiveStrategy strategy) {
  QVG_EXPECTS(model_ != nullptr);
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(drives.size() == n_);
  const auto m = static_cast<std::size_t>(max_electrons_per_dot) + 1;

  if (q0_.size() != m) {
    q0_.resize(m);
    for (std::size_t c = 0; c < m; ++c)
      q0_[c] = 0.5 * charging_[0] * static_cast<double>(c) *
               static_cast<double>(c);
    pow_m_.clear();
  }
  if (pow_m_.size() != n_ + 1) {
    pow_m_.resize(n_ + 1);
    pow_m_[0] = 1;
    for (std::size_t j = 1; j <= n_; ++j) pow_m_[j] = pow_m_[j - 1] * m;
  }

  seed_incumbent(drives, warm_start);
  if (strategy == ExhaustiveStrategy::kBranchAndBound)
    descend(n_, 0, drives, max_electrons_per_dot);
  else
    solve_full_enumeration(drives, max_electrons_per_dot);
  finish(m, warm_start);
  return best_;
}

void StochasticGroundStateSolver::bind(const CapacitanceModel& model) {
  model_ = &model;
  eval_.bind(model);
  const std::size_t n = model.num_dots();
  best_.assign(n, 0);
  start_.assign(n, 0);
  local_best_.assign(n, 0);
  polish_coupling_.assign(n, 0.0);
  tabu_until_.clear();
}

void StochasticGroundStateSolver::offer_polished(
    std::vector<int>& state, const std::vector<double>& drives,
    int max_electrons_per_dot) {
  // Zero-temperature polish: descend to the ICM fixed point of the restart's
  // best state, so no restart ever returns worse than plain greedy from that
  // state. Cross-restart comparison uses a full energy recompute (no
  // delta-accumulation residue), earliest restart wins exact ties.
  icm_relax(*model_, drives, max_electrons_per_dot, state, polish_coupling_);
  const double e = model_->energy(state, drives);
  if (!has_best_ || e < best_energy_) {
    best_energy_ = e;
    best_ = state;
    has_best_ = true;
  }
}

void StochasticGroundStateSolver::solve_anneal(
    const std::vector<double>& drives, int max_electrons_per_dot,
    const FrontierOptions& opt) {
  const std::size_t n = eval_.num_dots();
  const Rng base(opt.seed);
  const int restarts = std::max(1, opt.restarts);
  const int sweeps = std::max(1, opt.sweeps);
  const auto max_c = static_cast<std::int64_t>(max_electrons_per_dot);

  // Temperature scale: the largest charging energy is the natural size of a
  // single-dot move's energy change.
  double t0 = 0.0;
  for (const double ec : model_->charging_energies()) t0 = std::max(t0, ec);
  t0 *= opt.initial_temperature_scale;
  if (!(t0 > 0.0)) t0 = 1.0;

  for (int r = 0; r < restarts; ++r) {
    ++stats_.restarts;
    // Stream-per-restart, same schedule contract as multistart: restart k
    // depends on (seed, k) only.
    Rng rng = base.split(static_cast<std::uint64_t>(r));
    if (r == 0)
      std::fill(start_.begin(), start_.end(), 0);
    else
      for (auto& c : start_) c = static_cast<int>(rng.uniform_int(0, max_c));
    eval_.set_state(start_, drives);
    local_best_ = eval_.occupation();
    double local_best_e = eval_.energy();

    double t = t0;
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      for (std::size_t step = 0; step < n; ++step) {
        bool accepted = false;
        if (n >= 2 && max_electrons_per_dot >= 1 &&
            rng.uniform() < opt.swap_probability) {
          const auto a = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          auto b = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 2));
          if (b >= a) ++b;
          const double de = eval_.delta_swap(a, b);
          ++stats_.moves_evaluated;
          if (de < 0.0 || rng.uniform() < std::exp(-de / t)) {
            eval_.apply_swap(a, b);
            accepted = true;
          }
        } else if (max_electrons_per_dot >= 1) {
          const auto d = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
          // Uniform over {0..max} minus the current occupancy.
          int c = static_cast<int>(rng.uniform_int(0, max_c - 1));
          if (c >= eval_.occupation()[d]) ++c;
          const double de = eval_.delta_single(d, c);
          ++stats_.moves_evaluated;
          if (de < 0.0 || rng.uniform() < std::exp(-de / t)) {
            eval_.apply_single(d, c);
            accepted = true;
          }
        }
        if (accepted) {
          ++stats_.moves_accepted;
          if (eval_.energy() < local_best_e) {
            local_best_e = eval_.energy();
            local_best_ = eval_.occupation();
          }
        }
      }
      t *= opt.cooling;
    }
    offer_polished(local_best_, drives, max_electrons_per_dot);
  }
}

void StochasticGroundStateSolver::solve_tabu(const std::vector<double>& drives,
                                             int max_electrons_per_dot,
                                             const FrontierOptions& opt) {
  const std::size_t n = eval_.num_dots();
  const std::size_t m = static_cast<std::size_t>(max_electrons_per_dot) + 1;
  const Rng base(opt.seed);
  const int restarts = std::max(1, opt.restarts);
  const std::uint64_t tenure =
      opt.tabu_tenure > 0 ? static_cast<std::uint64_t>(opt.tabu_tenure)
                          : static_cast<std::uint64_t>(n) / 2 + 2;
  const std::uint64_t iters =
      static_cast<std::uint64_t>(std::max(1, opt.tabu_iterations_per_dot)) *
      static_cast<std::uint64_t>(n);
  const auto max_c = static_cast<std::int64_t>(max_electrons_per_dot);

  for (int r = 0; r < restarts; ++r) {
    ++stats_.restarts;
    Rng rng = base.split(static_cast<std::uint64_t>(r));
    if (r == 0)
      std::fill(start_.begin(), start_.end(), 0);
    else
      for (auto& c : start_) c = static_cast<int>(rng.uniform_int(0, max_c));
    // Tabu explores the landscape around a local optimum: descend first.
    icm_relax(*model_, drives, max_electrons_per_dot, start_,
              polish_coupling_);
    eval_.set_state(start_, drives);
    local_best_ = eval_.occupation();
    double local_best_e = eval_.energy();
    tabu_until_.assign(n * m, 0);

    for (std::uint64_t it = 1; it <= iters; ++it) {
      // Steepest admissible move over the full single-dot + pair-swap
      // neighbourhood (each candidate O(1)). A tabu move is admissible only
      // if it beats the restart's best (aspiration). Fixed scan order and
      // strict < keep the walk deterministic.
      int best_kind = -1;  // 0 = single, 1 = swap
      std::size_t move_a = 0;
      std::size_t move_b = 0;
      int move_c = 0;
      double best_de = std::numeric_limits<double>::infinity();
      const std::vector<int>& occ = eval_.occupation();
      for (std::size_t d = 0; d < n; ++d) {
        const int cur = occ[d];
        for (int c = 0; c <= max_electrons_per_dot; ++c) {
          if (c == cur) continue;
          const double de = eval_.delta_single(d, c);
          ++stats_.moves_evaluated;
          const bool is_tabu =
              tabu_until_[d * m + static_cast<std::size_t>(c)] > it;
          if (is_tabu && !(eval_.energy() + de < local_best_e)) continue;
          if (de < best_de) {
            best_de = de;
            best_kind = 0;
            move_a = d;
            move_c = c;
          }
        }
      }
      for (std::size_t a = 0; a + 1 < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (occ[a] == occ[b]) continue;
          const double de = eval_.delta_swap(a, b);
          ++stats_.moves_evaluated;
          const bool is_tabu =
              tabu_until_[a * m + static_cast<std::size_t>(occ[b])] > it ||
              tabu_until_[b * m + static_cast<std::size_t>(occ[a])] > it;
          if (is_tabu && !(eval_.energy() + de < local_best_e)) continue;
          if (de < best_de) {
            best_de = de;
            best_kind = 1;
            move_a = a;
            move_b = b;
          }
        }
      }
      if (best_kind < 0) break;  // every move tabu and none aspirates

      if (best_kind == 0) {
        const int old = occ[move_a];
        eval_.apply_single(move_a, move_c);
        tabu_until_[move_a * m + static_cast<std::size_t>(old)] =
            it + tenure + 1;
      } else {
        const int old_a = occ[move_a];
        const int old_b = occ[move_b];
        eval_.apply_swap(move_a, move_b);
        tabu_until_[move_a * m + static_cast<std::size_t>(old_a)] =
            it + tenure + 1;
        tabu_until_[move_b * m + static_cast<std::size_t>(old_b)] =
            it + tenure + 1;
      }
      ++stats_.moves_accepted;
      if (eval_.energy() < local_best_e) {
        local_best_e = eval_.energy();
        local_best_ = eval_.occupation();
      }
    }
    offer_polished(local_best_, drives, max_electrons_per_dot);
  }
}

const std::vector<int>& StochasticGroundStateSolver::solve(
    const std::vector<double>& drives, int max_electrons_per_dot,
    const FrontierOptions& options) {
  QVG_EXPECTS(model_ != nullptr);
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  QVG_EXPECTS(drives.size() == eval_.num_dots());
  stats_ = SolveStats{};
  has_best_ = false;
  best_energy_ = std::numeric_limits<double>::infinity();

  switch (options.strategy) {
    case FrontierStrategy::kAnneal:
      solve_anneal(drives, max_electrons_per_dot, options);
      break;
    case FrontierStrategy::kTabu:
      solve_tabu(drives, max_electrons_per_dot, options);
      break;
    case FrontierStrategy::kMultistartGreedy: {
      const int restarts = std::max(1, options.restarts);
      best_ = ground_state_greedy_multistart(
          *model_, drives, max_electrons_per_dot, restarts, options.seed);
      stats_.restarts = static_cast<std::uint64_t>(restarts);
      break;
    }
  }
  return best_;
}

std::vector<int> ground_state_frontier(const CapacitanceModel& model,
                                       const std::vector<double>& drives,
                                       int max_electrons_per_dot,
                                       const FrontierOptions& options,
                                       SolveStats* stats) {
  StochasticGroundStateSolver solver;
  solver.bind(model);
  std::vector<int> result =
      solver.solve(drives, max_electrons_per_dot, options);
  if (stats != nullptr) *stats = solver.last_stats();
  return result;
}

std::vector<int> ground_state_anneal(const CapacitanceModel& model,
                                     const std::vector<double>& drives,
                                     int max_electrons_per_dot,
                                     const FrontierOptions& options,
                                     SolveStats* stats) {
  FrontierOptions opt = options;
  opt.strategy = FrontierStrategy::kAnneal;
  return ground_state_frontier(model, drives, max_electrons_per_dot, opt,
                               stats);
}

std::vector<int> ground_state_tabu(const CapacitanceModel& model,
                                   const std::vector<double>& drives,
                                   int max_electrons_per_dot,
                                   const FrontierOptions& options,
                                   SolveStats* stats) {
  FrontierOptions opt = options;
  opt.strategy = FrontierStrategy::kTabu;
  return ground_state_frontier(model, drives, max_electrons_per_dot, opt,
                               stats);
}

std::vector<int> ground_state(const CapacitanceModel& model,
                              const std::vector<double>& gate_voltages,
                              const ChargeSolverOptions& options) {
  const auto drives = model.dot_drives(gate_voltages);
  if (model.num_dots() <= options.exhaustive_dot_limit) {
    IncrementalGroundStateSolver solver(model);
    return solver.solve(drives, options.max_electrons_per_dot);
  }
  return ground_state_frontier(model, drives, options.max_electrons_per_dot,
                               options.frontier);
}

}  // namespace qvg
