#include "device/charge_state.hpp"

#include "common/assert.hpp"

#include <limits>

namespace qvg {

std::vector<int> ground_state_exhaustive(const CapacitanceModel& model,
                                         const std::vector<double>& drives,
                                         int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);
  std::vector<int> best(n, 0);
  double best_energy = model.energy(best, drives);

  // Odometer-style enumeration of {0..max}^n.
  while (true) {
    std::size_t d = 0;
    while (d < n) {
      if (occupation[d] < max_electrons_per_dot) {
        ++occupation[d];
        break;
      }
      occupation[d] = 0;
      ++d;
    }
    if (d == n) break;  // wrapped around: enumeration complete
    const double e = model.energy(occupation, drives);
    if (e < best_energy) {
      best_energy = e;
      best = occupation;
    }
  }
  return best;
}

std::vector<int> ground_state_greedy(const CapacitanceModel& model,
                                     const std::vector<double>& drives,
                                     int max_electrons_per_dot) {
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = model.num_dots();
  std::vector<int> occupation(n, 0);

  // Iterated conditional modes: optimize one dot holding the others fixed.
  // Converges because each accepted move strictly lowers the energy and the
  // state space is finite.
  bool changed = true;
  int guard = 0;
  while (changed) {
    QVG_ASSERT(++guard < 10000);
    changed = false;
    for (std::size_t d = 0; d < n; ++d) {
      double best_e = std::numeric_limits<double>::infinity();
      int best_nd = occupation[d];
      std::vector<int> trial = occupation;
      for (int nd = 0; nd <= max_electrons_per_dot; ++nd) {
        trial[d] = nd;
        const double e = model.energy(trial, drives);
        if (e < best_e) {
          best_e = e;
          best_nd = nd;
        }
      }
      if (best_nd != occupation[d]) {
        occupation[d] = best_nd;
        changed = true;
      }
    }
  }
  return occupation;
}

void IncrementalGroundStateSolver::bind(const CapacitanceModel& model) {
  model_ = &model;
  n_ = model.num_dots();
  occupation_.assign(n_, 0);
  best_.assign(n_, 0);
  coupling_.assign(n_, 0.0);
  charging_ = model.charging_energies();
  mutual_flat_.resize(n_ * n_);
  const Matrix& mutual = model.mutual_coupling();
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = 0; k < n_; ++k)
      mutual_flat_[i * n_ + k] = mutual(i, k);
  q0_.clear();
}

const std::vector<int>& IncrementalGroundStateSolver::solve(
    const std::vector<double>& drives, int max_electrons_per_dot,
    const std::vector<int>* warm_start) {
  QVG_EXPECTS(model_ != nullptr);
  QVG_EXPECTS(max_electrons_per_dot >= 0);
  const std::size_t n = n_;
  QVG_EXPECTS(drives.size() == n);
  const auto m = static_cast<std::size_t>(max_electrons_per_dot) + 1;

  // Dot 0 is the innermost odometer digit: while it spins, no coupling sum
  // changes (its own coupling_[0] depends only on the other dots), so each
  // inner state costs O(1) — a table lookup and one fused multiply-add.
  // Outer digits advance once every m states and pay the O(n) coupling
  // update there, giving O(m^n + m^(n-1) n) total work instead of the
  // reference's O(m^n n^2).
  if (q0_.size() != m) {
    q0_.resize(m);
    for (std::size_t c = 0; c < m; ++c)
      q0_[c] = 0.5 * charging_[0] * static_cast<double>(c) *
               static_cast<double>(c);
  }

  // Start from the all-zero state (energy 0), the reference solver's
  // initial incumbent. The running best is tracked as an enumeration index
  // (digit j of base m = dot j's occupancy) — no vector copies in the loop.
  std::fill(occupation_.begin(), occupation_.end(), 0);
  std::fill(coupling_.begin(), coupling_.end(), 0.0);
  double base = 0.0;  // energy of the current outer state with dot 0 empty
  double best_energy = 0.0;
  unsigned long long best_index = 0;
  bool warm_is_best = false;

  if (warm_start != nullptr && !warm_start->empty()) {
    QVG_EXPECTS(warm_start->size() == n);
    // Inline quadratic energy against the flat parameter copies (cheaper
    // than CapacitanceModel::energy, which re-validates per call).
    double warm_energy = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto wj = static_cast<double>((*warm_start)[j]);
      warm_energy += 0.5 * charging_[j] * wj * wj - wj * drives[j];
      const double* row = mutual_flat_.data() + j * n;
      for (std::size_t k = j + 1; k < n; ++k)
        warm_energy += row[k] * wj * static_cast<double>((*warm_start)[k]);
    }
    if (warm_energy < best_energy) {
      best_energy = warm_energy;
      warm_is_best = true;
    }
  }

  // Move outer dot j (>= 1) to occupancy b, updating the base energy and
  // every dot's coupling sum:
  //   dE = Ec_j/2 (b^2 - a^2) - (b - a) drives[j] + (b - a) coupling_[j].
  auto apply_outer_move = [&](std::size_t j, int b) {
    const auto a = static_cast<double>(occupation_[j]);
    const auto db = static_cast<double>(b);
    base += 0.5 * charging_[j] * (db * db - a * a) - (db - a) * drives[j] +
            (db - a) * coupling_[j];
    occupation_[j] = b;
    const double shift = db - a;
    const double* row = mutual_flat_.data() + j * n;
    for (std::size_t k = 0; k < n; ++k) coupling_[k] += row[k] * shift;
  };

  unsigned long long index_base = 0;  // enumeration index of (0, outer...)
  const double drive0 = drives[0];
  while (true) {
    // Inner sweep over dot 0 at the current outer state. Enumeration order
    // (and therefore tie-breaking) matches the reference odometer exactly.
    const double e0 = drive0 - coupling_[0];
    for (std::size_t c = 0; c < m; ++c) {
      const double e = base + q0_[c] - static_cast<double>(c) * e0;
      if (e < best_energy) {
        best_energy = e;
        best_index = index_base + c;
        warm_is_best = false;
      }
    }
    // Advance the outer odometer (dots 1..n-1).
    std::size_t d = 1;
    while (d < n && occupation_[d] == max_electrons_per_dot) {
      apply_outer_move(d, 0);
      ++d;
    }
    if (d >= n) break;
    apply_outer_move(d, occupation_[d] + 1);
    index_base += m;
  }

  if (warm_is_best) {
    best_ = *warm_start;
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      best_[j] = static_cast<int>(best_index % m);
      best_index /= m;
    }
  }
  return best_;
}

std::vector<int> ground_state(const CapacitanceModel& model,
                              const std::vector<double>& gate_voltages,
                              const ChargeSolverOptions& options) {
  const auto drives = model.dot_drives(gate_voltages);
  if (model.num_dots() <= options.exhaustive_dot_limit) {
    IncrementalGroundStateSolver solver(model);
    return solver.solve(drives, options.max_electrons_per_dot);
  }
  return ground_state_greedy(model, drives, options.max_electrons_per_dot);
}

}  // namespace qvg
