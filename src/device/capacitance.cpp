#include "device/capacitance.hpp"

#include "common/assert.hpp"
#include "common/geometry.hpp"

#include <cmath>

namespace qvg {

CapacitanceModel::CapacitanceModel(Matrix alpha, std::vector<double> charging,
                                   Matrix mutual, std::vector<double> offsets)
    : alpha_(std::move(alpha)),
      charging_(std::move(charging)),
      mutual_(std::move(mutual)),
      offsets_(std::move(offsets)) {
  const std::size_t n = charging_.size();
  QVG_EXPECTS(n >= 1);
  QVG_EXPECTS(alpha_.rows() == n);
  QVG_EXPECTS(alpha_.cols() >= 1);
  QVG_EXPECTS(mutual_.rows() == n && mutual_.cols() == n);
  QVG_EXPECTS(offsets_.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    QVG_EXPECTS(charging_[i] > 0.0);
    QVG_EXPECTS(mutual_(i, i) == 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      QVG_EXPECTS(mutual_(i, k) >= 0.0);
      QVG_EXPECTS(std::abs(mutual_(i, k) - mutual_(k, i)) < 1e-15);
    }
    for (std::size_t j = 0; j < alpha_.cols(); ++j)
      QVG_EXPECTS(alpha_(i, j) >= 0.0);
  }
}

std::vector<double> CapacitanceModel::dot_drives(
    const std::vector<double>& gate_voltages) const {
  std::vector<double> drives;
  dot_drives_into(gate_voltages, drives);
  return drives;
}

void CapacitanceModel::dot_drives_into(const std::vector<double>& gate_voltages,
                                       std::vector<double>& out) const {
  QVG_EXPECTS(gate_voltages.size() == num_gates());
  out.resize(num_dots());
  for (std::size_t i = 0; i < num_dots(); ++i) {
    double acc = -offsets_[i];
    for (std::size_t j = 0; j < num_gates(); ++j)
      acc += alpha_(i, j) * gate_voltages[j];
    out[i] = acc;
  }
}

double CapacitanceModel::energy(const std::vector<int>& occupation,
                                const std::vector<double>& drives) const {
  QVG_EXPECTS(occupation.size() == num_dots());
  QVG_EXPECTS(drives.size() == num_dots());
  double e = 0.0;
  for (std::size_t i = 0; i < num_dots(); ++i) {
    const double ni = occupation[i];
    QVG_EXPECTS(occupation[i] >= 0);
    e += 0.5 * charging_[i] * ni * ni - ni * drives[i];
    for (std::size_t k = i + 1; k < num_dots(); ++k)
      e += mutual_(i, k) * ni * occupation[k];
  }
  return e;
}

double CapacitanceModel::addition_line_slope(std::size_t dot, std::size_t gx,
                                             std::size_t gy) const {
  QVG_EXPECTS(dot < num_dots());
  QVG_EXPECTS(gx < num_gates() && gy < num_gates() && gx != gy);
  QVG_EXPECTS(alpha_(dot, gy) > 0.0);
  return -alpha_(dot, gx) / alpha_(dot, gy);
}

TransitionTruth CapacitanceModel::pair_truth(
    std::size_t dot_x, std::size_t dot_y, std::size_t gx, std::size_t gy,
    const std::vector<double>& base_voltages) const {
  QVG_EXPECTS(dot_x < num_dots() && dot_y < num_dots() && dot_x != dot_y);
  QVG_EXPECTS(base_voltages.size() == num_gates());

  TransitionTruth truth;
  truth.slope_steep = addition_line_slope(dot_x, gx, gy);
  truth.slope_shallow = addition_line_slope(dot_y, gx, gy);

  // 0->1 addition line of dot d in the (V_gx, V_gy) plane:
  //   alpha(d,gx) Vx + alpha(d,gy) Vy = Ec_d/2 + offset_d - C_d
  // where C_d collects the contribution of all other (fixed) gates.
  auto line_intercept = [&](std::size_t d) {
    double fixed = 0.0;
    for (std::size_t j = 0; j < num_gates(); ++j) {
      if (j == gx || j == gy) continue;
      fixed += alpha_(d, j) * base_voltages[j];
    }
    const double rhs = 0.5 * charging_[d] + offsets_[d] - fixed;
    // Vy = (rhs - alpha(d,gx) Vx) / alpha(d,gy): intercept at Vx = 0.
    return rhs / alpha_(d, gy);
  };

  const Line2 steep(truth.slope_steep, line_intercept(dot_x));
  const Line2 shallow(truth.slope_shallow, line_intercept(dot_y));
  const auto crossing = steep.intersect(shallow);
  QVG_ASSERT(crossing.has_value());
  truth.triple_point = *crossing;
  return truth;
}

Matrix CapacitanceModel::ideal_virtualization() const {
  QVG_EXPECTS(num_gates() == num_dots());
  Matrix m(num_dots(), num_dots());
  for (std::size_t i = 0; i < num_dots(); ++i) {
    QVG_EXPECTS(alpha_(i, i) > 0.0);
    for (std::size_t j = 0; j < num_dots(); ++j)
      m(i, j) = alpha_(i, j) / alpha_(i, i);
  }
  return m;
}

}  // namespace qvg
