// Full device simulator: constant-interaction physics + charge sensor +
// temporal noise, exposed through the CurrentSource experiment interface so
// every extraction algorithm can run against it directly (the "live device"
// mode) or against CSDs it generated (the paper's replay mode).
#pragma once

#include "device/capacitance.hpp"
#include "device/charge_state.hpp"
#include "device/noise.hpp"
#include "device/sensor.hpp"
#include "grid/csd.hpp"
#include "probe/current_source.hpp"

#include <memory>
#include <string>
#include <vector>

namespace qvg {

/// Which two gates a double-dot scan sweeps, and which dots they address.
struct ScanPair {
  std::size_t gate_x = 0;  // x-axis gate (VP1)
  std::size_t gate_y = 1;  // y-axis gate (VP2)
  std::size_t dot_x = 0;   // dot whose addition line is steep in this plane
  std::size_t dot_y = 1;   // dot whose addition line is shallow
};

/// How evaluate_raster computes each pixel.
enum class RasterEvalMode {
  /// Incremental solver, reused scratch buffers, warm-started from the
  /// previous pixel in the row. The production path.
  kFast,
  /// The pre-optimization reference path: fresh voltage/drive vectors per
  /// pixel and full O(n^2)-per-state energy recomputes. Kept for the
  /// equivalence tests and the bench harness's before/after ablation.
  kNaive,
};

struct RasterEvalOptions {
  RasterEvalMode mode = RasterEvalMode::kFast;
  /// Row-parallel evaluation on the global ThreadPool (kFast only; results
  /// are bit-identical to serial because rows are independent and warm
  /// starts reset at each row).
  bool parallel = true;
};

class DeviceSimulator final : public CurrentSource {
 public:
  DeviceSimulator(CapacitanceModel model, SensorConfig sensor_config,
                  std::vector<double> base_voltages, ScanPair pair,
                  std::uint64_t noise_seed = 42,
                  double dwell_seconds = 0.050);

  /// Attach a noise process (sums with any already attached).
  void add_noise(std::unique_ptr<NoiseProcess> process);

  // CurrentSource interface (Algorithm 1).
  double get_current(double v1, double v2) override;

  /// Batched probes: the noise-free physics of the whole batch evaluates in
  /// parallel chunks on the global ThreadPool (the raster path's machinery;
  /// chunking is bit-identical to the scalar chain because the exact solver's
  /// result does not depend on its warm start), then temporal noise is
  /// applied in probe order. Output, probe count, clock, and noise state
  /// match the scalar get_current loop exactly.
  void get_currents(std::span<const Point2> points,
                    std::span<double> out) override;
  [[nodiscard]] SimClock& clock() override { return clock_; }
  [[nodiscard]] const SimClock& clock() const override { return clock_; }
  [[nodiscard]] long probe_count() const override { return probes_; }

  /// Noise-free current at a voltage pair (reference for tests and SNR
  /// calibration). Allocation-free: reuses an internal scratch workspace,
  /// so concurrent calls on the same simulator are not safe — use
  /// evaluate_raster for batched/parallel evaluation.
  [[nodiscard]] double ideal_current(double v1, double v2) const;

  /// Ground-state occupation at a voltage pair. Shares the internal scratch
  /// workspace with ideal_current: not safe to call concurrently on the
  /// same simulator.
  [[nodiscard]] std::vector<int> occupation_at(double v1, double v2) const;

  /// Batched noise-free evaluation of every pixel of the window (the
  /// dense-raster hot path). Probe-free: does not touch the clock, probe
  /// counter, or noise state.
  [[nodiscard]] GridD evaluate_raster(const VoltageAxis& x_axis,
                                      const VoltageAxis& y_axis,
                                      const RasterEvalOptions& opts = {}) const;

  /// Analytic transition-line ground truth for the scanned pair.
  [[nodiscard]] TransitionTruth truth() const;

  /// Acquire a full CSD over the given axes (raster scan through this
  /// simulator, so it costs probes and simulated time) and stamp it with the
  /// ground truth. `name` labels the diagram for reports. Internally uses
  /// the batched evaluate_raster path, then applies temporal noise in probe
  /// order — identical output to probing pixel-by-pixel via get_current.
  [[nodiscard]] Csd generate_csd(const VoltageAxis& x_axis,
                                 const VoltageAxis& y_axis,
                                 const std::string& name = {});

  [[nodiscard]] const CapacitanceModel& model() const noexcept { return model_; }
  [[nodiscard]] const ChargeSensor& sensor() const noexcept { return sensor_; }
  [[nodiscard]] const ScanPair& scan_pair() const noexcept { return pair_; }
  [[nodiscard]] const std::vector<double>& base_voltages() const noexcept {
    return base_voltages_;
  }

  /// Change the scanned gate pair (used by the n-dot array extractor as it
  /// walks neighbouring plunger pairs).
  void set_scan_pair(ScanPair pair);

  /// Update a base (non-swept) gate voltage.
  void set_base_voltage(std::size_t gate, double voltage);

  /// Charge-solver configuration. The constructor derives
  /// frontier.seed deterministically from the noise seed (the request
  /// seed), so every stochastic ground-state search above the exhaustive
  /// dot limit is a pure function of the request — job-level retries and
  /// fault-injection reruns replay it bit-identically.
  [[nodiscard]] const ChargeSolverOptions& solver_options() const noexcept {
    return solver_options_;
  }
  /// Override the solver configuration (e.g. frontier strategy). Resets the
  /// probe scratch's warm state.
  void set_solver_options(const ChargeSolverOptions& options);

  /// Reset clock, probe counter, noise state, and noise RNG (deterministic
  /// replay of an experiment).
  void reset();

 private:
  /// Per-thread scratch for the allocation-free probe path.
  struct ProbeScratch {
    std::vector<double> voltages;
    std::vector<double> drives;
    std::vector<int> warm;
    bool has_warm = false;
    IncrementalGroundStateSolver solver;
    /// Stochastic frontier solver for > exhaustive_dot_limit dots.
    StochasticGroundStateSolver frontier;
  };

  /// Ground-state occupation via the scratch workspace (no allocation after
  /// the first call); leaves the full voltage vector in ws.voltages.
  const std::vector<int>& occupation_with(ProbeScratch& ws, double v1,
                                          double v2) const;
  [[nodiscard]] double probe_with(ProbeScratch& ws, double v1, double v2) const;
  [[nodiscard]] double ideal_current_naive(double v1, double v2) const;

  CapacitanceModel model_;
  ChargeSensor sensor_;
  std::vector<double> base_voltages_;
  ScanPair pair_;
  ChargeSolverOptions solver_options_;
  CompositeNoise noise_;
  Rng rng_;
  std::uint64_t noise_seed_;
  SimClock clock_;
  long probes_ = 0;
  mutable ProbeScratch scratch_;
};

}  // namespace qvg
