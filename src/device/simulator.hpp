// Full device simulator: constant-interaction physics + charge sensor +
// temporal noise, exposed through the CurrentSource experiment interface so
// every extraction algorithm can run against it directly (the "live device"
// mode) or against CSDs it generated (the paper's replay mode).
#pragma once

#include "device/capacitance.hpp"
#include "device/charge_state.hpp"
#include "device/noise.hpp"
#include "device/sensor.hpp"
#include "grid/csd.hpp"
#include "probe/current_source.hpp"

#include <memory>
#include <string>
#include <vector>

namespace qvg {

/// Which two gates a double-dot scan sweeps, and which dots they address.
struct ScanPair {
  std::size_t gate_x = 0;  // x-axis gate (VP1)
  std::size_t gate_y = 1;  // y-axis gate (VP2)
  std::size_t dot_x = 0;   // dot whose addition line is steep in this plane
  std::size_t dot_y = 1;   // dot whose addition line is shallow
};

class DeviceSimulator final : public CurrentSource {
 public:
  DeviceSimulator(CapacitanceModel model, SensorConfig sensor_config,
                  std::vector<double> base_voltages, ScanPair pair,
                  std::uint64_t noise_seed = 42,
                  double dwell_seconds = 0.050);

  /// Attach a noise process (sums with any already attached).
  void add_noise(std::unique_ptr<NoiseProcess> process);

  // CurrentSource interface (Algorithm 1).
  double get_current(double v1, double v2) override;
  [[nodiscard]] SimClock& clock() override { return clock_; }
  [[nodiscard]] const SimClock& clock() const override { return clock_; }
  [[nodiscard]] long probe_count() const override { return probes_; }

  /// Noise-free current at a voltage pair (reference for tests and SNR
  /// calibration).
  [[nodiscard]] double ideal_current(double v1, double v2) const;

  /// Ground-state occupation at a voltage pair.
  [[nodiscard]] std::vector<int> occupation_at(double v1, double v2) const;

  /// Analytic transition-line ground truth for the scanned pair.
  [[nodiscard]] TransitionTruth truth() const;

  /// Acquire a full CSD over the given axes (raster scan through this
  /// simulator, so it costs probes and simulated time) and stamp it with the
  /// ground truth. `name` labels the diagram for reports.
  [[nodiscard]] Csd generate_csd(const VoltageAxis& x_axis,
                                 const VoltageAxis& y_axis,
                                 const std::string& name = {});

  [[nodiscard]] const CapacitanceModel& model() const noexcept { return model_; }
  [[nodiscard]] const ChargeSensor& sensor() const noexcept { return sensor_; }
  [[nodiscard]] const ScanPair& scan_pair() const noexcept { return pair_; }
  [[nodiscard]] const std::vector<double>& base_voltages() const noexcept {
    return base_voltages_;
  }

  /// Change the scanned gate pair (used by the n-dot array extractor as it
  /// walks neighbouring plunger pairs).
  void set_scan_pair(ScanPair pair);

  /// Update a base (non-swept) gate voltage.
  void set_base_voltage(std::size_t gate, double voltage);

  /// Reset clock, probe counter, noise state, and noise RNG (deterministic
  /// replay of an experiment).
  void reset();

 private:
  CapacitanceModel model_;
  ChargeSensor sensor_;
  std::vector<double> base_voltages_;
  ScanPair pair_;
  ChargeSolverOptions solver_options_;
  CompositeNoise noise_;
  Rng rng_;
  std::uint64_t noise_seed_;
  SimClock clock_;
  long probes_ = 0;
};

}  // namespace qvg
