// Charge-sensor model.
//
// The sensors (C1/C2 in the paper's Figure 1) are single quantum dots whose
// conductance sits on the flank of a Coulomb-blockade peak; a change in the
// electrostatic environment (electron loading in a nearby dot, or direct
// plunger-gate crosstalk) shifts the peak and changes the measured current.
// We model the sensor detuning as
//
//   u = u0 + sum_j beta_j V_j - sum_i gamma_i n_i
//
// and the current as a periodic train of Lorentzian peaks plus a small
// linear background. beta gives the smooth current gradient visible across
// real CSDs; gamma produces the sharp current step at every charge-state
// transition line.
#pragma once

#include <cstddef>
#include <vector>

namespace qvg {

struct SensorConfig {
  /// Direct gate->sensor crosstalk lever arms (eV/V), one per gate.
  std::vector<double> beta;
  /// Charge-transition shifts (eV), one per dot; positive moves the sensor
  /// down-flank so loading an electron *reduces* the current.
  std::vector<double> gamma;
  /// Detuning offset (eV) choosing the operating point on the peak flank.
  double u0 = 0.0;
  /// Coulomb-peak spacing (eV) and half width at half maximum (eV).
  double peak_spacing = 2.0e-3;
  double peak_width = 0.35e-3;
  /// Peak current (arbitrary units, think nA).
  double peak_current = 1.0;
  /// Linear background conductance (A per eV of detuning).
  double background_slope = 0.0;
};

class ChargeSensor {
 public:
  explicit ChargeSensor(SensorConfig config);

  [[nodiscard]] const SensorConfig& config() const noexcept { return config_; }

  /// Sensor detuning for gate voltages V and dot occupation n.
  [[nodiscard]] double detuning(const std::vector<double>& gate_voltages,
                                const std::vector<int>& occupation) const;

  /// Noise-free sensor current at a detuning.
  [[nodiscard]] double current_at_detuning(double u) const;

  /// Convenience: current for gate voltages and occupation.
  [[nodiscard]] double current(const std::vector<double>& gate_voltages,
                               const std::vector<int>& occupation) const;

  /// Magnitude of the current step caused by loading one electron into
  /// `dot`, evaluated at the given operating detuning. Used to calibrate
  /// noise tiers (signal-to-noise) in the synthetic dataset.
  [[nodiscard]] double step_contrast(std::size_t dot, double u) const;

 private:
  SensorConfig config_;
};

}  // namespace qvg
