#include "grid/csd.hpp"

#include "common/assert.hpp"

#include <algorithm>

namespace qvg {

Csd::Csd(VoltageAxis x_axis, VoltageAxis y_axis)
    : x_axis_(x_axis),
      y_axis_(y_axis),
      grid_(x_axis.count(), y_axis.count(), 0.0) {}

std::pair<double, double> Csd::current_range() const {
  QVG_EXPECTS(!grid_.empty());
  const auto& data = grid_.raw();
  const auto [lo, hi] = std::minmax_element(data.begin(), data.end());
  return {*lo, *hi};
}

Csd Csd::cropped(std::size_t x0, std::size_t y0, std::size_t w,
                 std::size_t h) const {
  QVG_EXPECTS(w >= 1 && h >= 1);
  QVG_EXPECTS(x0 + w <= width() && y0 + h <= height());
  Csd out(VoltageAxis(x_axis_.voltage(static_cast<double>(x0)), x_axis_.step(), w),
          VoltageAxis(y_axis_.voltage(static_cast<double>(y0)), y_axis_.step(), h));
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      out.grid()(x, y) = grid_(x0 + x, y0 + y);
  out.truth_ = truth_;
  out.name_ = name_;
  return out;
}

}  // namespace qvg
