#include "grid/axis.hpp"

#include "common/assert.hpp"

#include <algorithm>
#include <cmath>

namespace qvg {

VoltageAxis::VoltageAxis(double start, double step, std::size_t count)
    : start_(start), step_(step), count_(count) {
  QVG_EXPECTS(step > 0.0);
  QVG_EXPECTS(count >= 1);
}

VoltageAxis VoltageAxis::over_range(double lo, double hi, std::size_t count) {
  QVG_EXPECTS(hi > lo);
  QVG_EXPECTS(count >= 2);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  return VoltageAxis(lo, step, count);
}

std::size_t VoltageAxis::nearest_index(double voltage) const noexcept {
  const double idx = std::round(index_of(voltage));
  if (idx <= 0.0) return 0;
  const auto i = static_cast<std::size_t>(idx);
  return std::min(i, count_ - 1);
}

}  // namespace qvg
