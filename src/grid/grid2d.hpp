// Row-major 2-D grid. Index convention matches DESIGN.md §2: operator()(x, y)
// where x is the column (VP1 axis) and y is the row (VP2 axis).
#pragma once

#include "common/assert.hpp"

#include <cstddef>
#include <vector>

namespace qvg {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  Grid2D(std::size_t width, std::size_t height, T fill = T{})
      : width_(width), height_(height), data_(width * height, fill) {
    QVG_EXPECTS(width > 0 && height > 0);
  }

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] bool in_bounds(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept {
    return x >= 0 && y >= 0 && static_cast<std::size_t>(x) < width_ &&
           static_cast<std::size_t>(y) < height_;
  }

  /// Unchecked access (hot loops). x = column, y = row.
  T& operator()(std::size_t x, std::size_t y) noexcept {
    return data_[y * width_ + x];
  }
  const T& operator()(std::size_t x, std::size_t y) const noexcept {
    return data_[y * width_ + x];
  }

  /// Bounds-checked access.
  T& at(std::size_t x, std::size_t y) {
    QVG_EXPECTS(x < width_ && y < height_);
    return data_[y * width_ + x];
  }
  const T& at(std::size_t x, std::size_t y) const {
    QVG_EXPECTS(x < width_ && y < height_);
    return data_[y * width_ + x];
  }

  /// Clamped access: out-of-range coordinates are clamped to the border
  /// (replicate border mode, used by the image-processing kernels).
  [[nodiscard]] const T& clamped(std::ptrdiff_t x, std::ptrdiff_t y) const noexcept {
    const std::size_t cx = x < 0 ? 0
                           : static_cast<std::size_t>(x) >= width_ ? width_ - 1
                                                                   : static_cast<std::size_t>(x);
    const std::size_t cy = y < 0 ? 0
                           : static_cast<std::size_t>(y) >= height_ ? height_ - 1
                                                                    : static_cast<std::size_t>(y);
    return data_[cy * width_ + cx];
  }

  [[nodiscard]] const std::vector<T>& raw() const noexcept { return data_; }
  [[nodiscard]] std::vector<T>& raw() noexcept { return data_; }

  void fill(const T& value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Grid2D&, const Grid2D&) = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<T> data_;
};

using GridD = Grid2D<double>;
using GridU8 = Grid2D<unsigned char>;

}  // namespace qvg
