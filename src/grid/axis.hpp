// Voltage axis: the mapping between integer pixel indices and physical gate
// voltages. A charge stability diagram has one axis per plunger gate.
#pragma once

#include <cstddef>

namespace qvg {

class VoltageAxis {
 public:
  VoltageAxis() = default;

  /// Axis spanning `count` pixels starting at `start` volts with `step` volts
  /// per pixel. step > 0, count >= 1.
  VoltageAxis(double start, double step, std::size_t count);

  /// Convenience: axis over [lo, hi] with `count` pixels (inclusive ends).
  static VoltageAxis over_range(double lo, double hi, std::size_t count);

  [[nodiscard]] double start() const noexcept { return start_; }
  [[nodiscard]] double step() const noexcept { return step_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double end() const noexcept {
    return start_ + step_ * static_cast<double>(count_ - 1);
  }

  /// Voltage at pixel index i (i may exceed the axis for extrapolation).
  [[nodiscard]] double voltage(double index) const noexcept {
    return start_ + step_ * index;
  }

  /// Continuous pixel index of a voltage.
  [[nodiscard]] double index_of(double voltage) const noexcept {
    return (voltage - start_) / step_;
  }

  /// Nearest in-range pixel index of a voltage (clamped).
  [[nodiscard]] std::size_t nearest_index(double voltage) const noexcept;

  [[nodiscard]] bool in_range(double voltage) const noexcept {
    return voltage >= start_ - 0.5 * step_ && voltage <= end() + 0.5 * step_;
  }

  friend bool operator==(const VoltageAxis&, const VoltageAxis&) = default;

 private:
  double start_ = 0.0;
  double step_ = 1.0;
  std::size_t count_ = 1;
};

}  // namespace qvg
