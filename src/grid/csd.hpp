// Charge stability diagram: sensor current over a 2-D plunger-voltage window,
// plus optional ground-truth transition-line metadata when the CSD came from
// the device simulator (used by the automated success verdicts).
#pragma once

#include "common/geometry.hpp"
#include "grid/axis.hpp"
#include "grid/grid2d.hpp"

#include <optional>
#include <string>

namespace qvg {

/// Ground truth about the two transition lines bounding the (0,0) region.
/// Available for simulated devices; measured datasets would not carry it.
struct TransitionTruth {
  /// Slope of the steep (0,0)->(1,0) line, dVP2/dVP1 (negative, |m|>1).
  double slope_steep = 0.0;
  /// Slope of the shallow (0,0)->(0,1) line, dVP2/dVP1 (negative, |m|<1).
  double slope_shallow = 0.0;
  /// Intersection of the two lines (triple-point region), in volts.
  Point2 triple_point{};
  /// Reference compensation coefficients of the exact orthogonalizing matrix
  /// M = D^-1 A (DESIGN.md §2): in the x = VP1, y = VP2 convention,
  /// a12 = -1/slope_steep and a21 = -slope_shallow. (The paper's §2.3
  /// formulas are the same modulo its figure-axes convention, which plots
  /// VP1 on the vertical axis.)
  [[nodiscard]] double alpha12() const { return -1.0 / slope_steep; }
  [[nodiscard]] double alpha21() const { return -slope_shallow; }

  friend bool operator==(const TransitionTruth&, const TransitionTruth&) =
      default;
};

/// A measured or simulated charge stability diagram.
/// Pixel (x, y) holds the sensor current at VP1 = x_axis.voltage(x),
/// VP2 = y_axis.voltage(y).
class Csd {
 public:
  Csd() = default;
  Csd(VoltageAxis x_axis, VoltageAxis y_axis);

  [[nodiscard]] const VoltageAxis& x_axis() const noexcept { return x_axis_; }
  [[nodiscard]] const VoltageAxis& y_axis() const noexcept { return y_axis_; }
  [[nodiscard]] std::size_t width() const noexcept { return grid_.width(); }
  [[nodiscard]] std::size_t height() const noexcept { return grid_.height(); }

  [[nodiscard]] GridD& grid() noexcept { return grid_; }
  [[nodiscard]] const GridD& grid() const noexcept { return grid_; }

  [[nodiscard]] double& current(std::size_t x, std::size_t y) {
    return grid_.at(x, y);
  }
  [[nodiscard]] double current(std::size_t x, std::size_t y) const {
    return grid_.at(x, y);
  }

  /// Voltage pair at a pixel.
  [[nodiscard]] Point2 voltage_at(std::size_t x, std::size_t y) const {
    return {x_axis_.voltage(static_cast<double>(x)),
            y_axis_.voltage(static_cast<double>(y))};
  }

  void set_truth(TransitionTruth truth) { truth_ = truth; }
  [[nodiscard]] const std::optional<TransitionTruth>& truth() const noexcept {
    return truth_;
  }

  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Min/max current over the whole diagram.
  [[nodiscard]] std::pair<double, double> current_range() const;

  /// Crop to the pixel rectangle [x0, x0+w) x [y0, y0+h), preserving the
  /// voltage mapping of the retained pixels. Mirrors the paper's evaluation,
  /// which crops qflow diagrams to the central 50% region.
  [[nodiscard]] Csd cropped(std::size_t x0, std::size_t y0, std::size_t w,
                            std::size_t h) const;

  /// Full value equality: axes, pixels, truth, and name (wire round-trip
  /// tests pin bit-exact diagrams).
  friend bool operator==(const Csd&, const Csd&) = default;

 private:
  VoltageAxis x_axis_;
  VoltageAxis y_axis_;
  GridD grid_;
  std::optional<TransitionTruth> truth_;
  std::string name_;
};

}  // namespace qvg
