// Deterministic, platform-independent random number generation.
//
// std::mt19937 is portable but the standard *distributions* are not
// (libstdc++ and libc++ differ), so benchmark datasets generated through
// std::normal_distribution would not be reproducible across toolchains.
// We therefore implement xoshiro256++ plus our own distribution transforms.
#pragma once

#include <array>
#include <cstdint>

namespace qvg {

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, high quality, tiny state.
/// Seeded through SplitMix64 so that any 64-bit seed gives a good state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic given the seed).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (lambda > 0).
  double exponential(double rate);

  /// Split off an independently seeded child generator. Children derived
  /// with distinct tags are statistically independent streams.
  [[nodiscard]] Rng split(std::uint64_t tag) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qvg
