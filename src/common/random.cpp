#include "common/random.hpp"

#include "common/assert.hpp"

#include <cmath>
#include <numbers>

namespace qvg {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QVG_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QVG_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: two uniforms -> two independent normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  QVG_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  QVG_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::exponential(double rate) {
  QVG_EXPECTS(rate > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::split(std::uint64_t tag) const {
  // Derive a child seed from our state and the tag; mixing through
  // splitmix64 decorrelates the streams.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 13) ^ (tag * 0xd1342543de82ef95ULL);
  return Rng(splitmix64(s));
}

}  // namespace qvg
