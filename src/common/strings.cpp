#include "common/strings.hpp"

#include "common/assert.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace qvg {

std::string format_fixed(double value, int digits) {
  QVG_EXPECTS(digits >= 0);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(s);
  while (std::getline(is, field, delim)) out.push_back(field);
  if (!s.empty() && s.back() == delim) out.emplace_back();
  if (s.empty()) out.emplace_back();
  return out;
}

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  if (begin >= end) return {};
  return std::string(begin, end);
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  QVG_EXPECTS(!header.empty());
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    QVG_EXPECTS(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << pad_right(row[c], widths[c]) << ' ';
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  emit_rule();
  emit_row(header);
  emit_rule();
  for (const auto& row : rows) emit_row(row);
  emit_rule();
  return os.str();
}

}  // namespace qvg
