// Typed error vocabulary for *expected* domain failures.
//
// error.hpp's policy still holds: contract violations and environmental
// faults throw. But "extraction failed on this noisy device" is an ordinary,
// reportable outcome, and the pre-redesign convention — a `bool success`
// plus a free-form `failure_reason` string on every result struct — made
// callers parse prose to branch on the failure kind. Status replaces it with
// a machine-readable code, the pipeline stage that failed, and the
// human-readable detail; Result<T> carries a Status alongside an optional
// value for call-shaped APIs (the Status analogue of Expected<T>).
#pragma once

#include "common/error.hpp"

#include <optional>
#include <string>
#include <utility>

namespace qvg {

/// Failure category. Codes are stable API: callers branch on these instead
/// of grepping failure strings.
enum class ErrorCode {
  kOk = 0,
  /// A request/argument was malformed (e.g. no backend on an
  /// ExtractionRequest).
  kInvalidRequest,
  /// Anchor preprocessing could not place a valid critical region.
  kAnchorNotFound,
  /// The sweeps located too few transition points to fit.
  kInsufficientPoints,
  /// The 2-piecewise fit rejected the points.
  kFitFailed,
  /// The extracted slopes do not yield an invertible virtualization matrix.
  kDegenerateVirtualization,
  /// The Hough baseline found no line in a required family.
  kLineNotFound,
  /// At least one pair of an array extraction failed.
  kPairFailed,
  /// File or stream I/O failed.
  kIoError,
  /// Input data could not be parsed.
  kParseError,
  /// The job was cancelled (CancelToken fired) before or during the run;
  /// Status::stage() records the pipeline stage at the interruption point.
  kCancelled,
  /// The job's deadline passed (including a Budget.max_wall_seconds folded
  /// into the deadline at job start); Status::stage() records the
  /// interrupting stage.
  kDeadlineExceeded,
  /// The job's probe budget (Budget.max_probes) was exhausted;
  /// Status::stage() records the interrupting stage. Distinct from
  /// kDeadlineExceeded so callers (and csd_tool's exit codes) can tell
  /// "ran out of time" from "ran out of probes".
  kBudgetExhausted,
  /// A probe batch failed transiently (instrument glitch, comm timeout):
  /// retrying the same batch may succeed. Surfaces from
  /// CurrentSource::try_get_currents; probe_with_retry absorbs it up to
  /// RetryPolicy::max_attempts before escalating to kProbeHardFault.
  kProbeTransient,
  /// A probe batch failed permanently (instrument fault, or a transient
  /// fault that persisted through every retry). The acquisition cannot
  /// continue; JobQueue can optionally re-run the whole job
  /// (SubmitOptions::max_job_retries).
  kProbeHardFault,
  /// The instrument reported that its gate offsets drifted (slow drift or a
  /// telegraph charge jump crossed the detection threshold): readings since
  /// CurrentSource::drift_started_at_probe() are stale. The source has
  /// recalibrated by the time this is reported; recovery invalidates the
  /// stale ProbeCache region and re-probes only the affected rows.
  kDeviceDrifted,
  /// The service shed this job at admission: the tenant's (or the queue's)
  /// pending backlog exceeded its configured bound. The job never ran and
  /// issued zero probes; clients should back off and resubmit. Maps to
  /// HTTP 503 at the wire API.
  kOverloaded,
  /// Unclassified internal failure.
  kInternal,
};

/// Stable snake_case name of a code ("ok", "anchor_not_found", ...), for
/// logs and serialized reports.
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// The outcome of an operation: ok, or a typed failure carrying the pipeline
/// stage that failed ("anchors", "fit", ...) and a human-readable detail.
class Status {
 public:
  /// Ok status.
  Status() = default;

  /// A failed status. `code` must not be kOk.
  [[nodiscard]] static Status failure(ErrorCode code, std::string stage,
                                      std::string detail);

  [[nodiscard]] bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& stage() const noexcept { return stage_; }
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

  /// "stage: detail" (or the non-empty half) — the legacy failure_reason
  /// string. Empty for an ok status.
  [[nodiscard]] std::string message() const;

  friend bool operator==(const Status&, const Status&) = default;

 private:
  Status(ErrorCode code, std::string stage, std::string detail)
      : code_(code), stage_(std::move(stage)), detail_(std::move(detail)) {}

  ErrorCode code_ = ErrorCode::kOk;
  std::string stage_;
  std::string detail_;
};

/// Status-carrying expected type: a value, or the Status explaining why
/// there is none. Mirrors Expected<T>'s surface (has_value/value/reason) so
/// migrating call sites is mechanical, and adds status() for typed handling.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Construct a failure. `status.ok()` is a contract violation.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok())
      throw ContractViolation("Result constructed from an ok Status");
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  [[nodiscard]] bool ok() const noexcept { return has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// The failure Status (ok when the Result holds a value).
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Legacy-compatible failure message; empty when the Result holds a value.
  [[nodiscard]] std::string reason() const { return status_.message(); }

  [[nodiscard]] const T& value() const& {
    if (!value_)
      throw ContractViolation("Result::value() on failure: " + status_.message());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    if (!value_)
      throw ContractViolation("Result::value() on failure: " + status_.message());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!value_)
      throw ContractViolation("Result::value() on failure: " + status_.message());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qvg
