// Minimal leveled logger. Thread-safe enough for this library's needs
// (single writer per stream); designed for human-readable diagnostics from
// the extraction pipeline and benches.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace qvg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging configuration. Defaults to kWarn so library users are not
/// spammed; benches/examples raise it explicitly.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  /// Redirect output (e.g. to a file stream owned by the caller). The stream
  /// must outlive the logger's use. Pass nullptr to restore std::clog.
  void set_stream(std::ostream* os) noexcept { stream_ = os; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* stream_ = nullptr;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace qvg
