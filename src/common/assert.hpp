// Lightweight contract-checking macros in the spirit of the GSL's
// Expects/Ensures. Violations indicate programmer error and throw
// qvg::ContractViolation (an exception rather than abort so that tests can
// assert on misuse).
#pragma once

#include "common/error.hpp"

#include <sstream>
#include <string>

namespace qvg::detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line) {
  std::ostringstream os;
  os << kind << " violated: `" << expr << "` at " << file << ":" << line;
  throw ContractViolation(os.str());
}

}  // namespace qvg::detail

// Precondition check: argument/state requirements at function entry.
#define QVG_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qvg::detail::contract_failed("Precondition", #cond, __FILE__,      \
                                     __LINE__);                            \
  } while (false)

// Postcondition / invariant check.
#define QVG_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qvg::detail::contract_failed("Postcondition", #cond, __FILE__,     \
                                     __LINE__);                            \
  } while (false)

// Internal invariant that should be unreachable if the module is correct.
#define QVG_ASSERT(cond)                                                   \
  do {                                                                     \
    if (!(cond))                                                           \
      ::qvg::detail::contract_failed("Invariant", #cond, __FILE__,         \
                                     __LINE__);                            \
  } while (false)
