// Fixed-size thread pool with a cooperative scheduler: blocking
// `parallel_for` over contiguous index ranges and a fire-and-forget `post()`
// task queue share the same workers. Several range jobs can be in flight at
// once (each caller participates in its own job), and — the part the async
// service layer depends on — a posted task may itself call `parallel_for`
// and fan out across the pool's idle workers instead of being forced to run
// its loops inline. The re-entrancy guard survives only where it is needed
// for correctness: a `parallel_for` issued from *inside a running chunk*
// still runs inline, so chunks can never deadlock waiting on their own pool.
//
// Used to row-parallelize the batched raster evaluation
// (DeviceSimulator::evaluate_raster) and the dense image scans of the
// Canny/Hough baseline; the service layer's JobQueue runs async extraction
// jobs through post(), and those jobs' nested rasters parallelize here too.
//
// All users split work so that each index writes disjoint output, which
// keeps parallel results bit-identical to serial ones regardless of thread
// count or chunk schedule.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace qvg {

class ThreadPool {
 public:
  /// Spawn `thread_count` workers in addition to the calling thread;
  /// 0 means auto: the QVG_THREADS environment variable (total threads
  /// including the caller, clamped to 1024) when set to a positive
  /// integer, otherwise hardware_concurrency - 1 (so pool size == core
  /// count). QVG_THREADS makes multi-core re-measurement a one-variable
  /// experiment: QVG_THREADS=4 bench_json records threads=4 in every
  /// scenario. Malformed or non-positive values fall back to hardware
  /// sizing.
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Run fn(lo, hi) over disjoint chunks covering [begin, end). Blocks until
  /// every chunk has finished; the calling thread executes chunks too, and
  /// idle workers join in — including when the caller is itself a pool
  /// worker running a posted task (the cooperative-scheduler case: an async
  /// job's nested raster fans out instead of degrading to serial). The first
  /// exception thrown by `fn` is rethrown here. Only a call made from
  /// *inside a chunk* runs inline (serially), which keeps genuinely
  /// re-entrant fan-out from deadlocking on its own pool.
  void parallel_for(std::size_t begin, std::size_t end, const RangeFn& fn,
                    std::size_t min_chunk = 1);

  /// Enqueue a fire-and-forget task. Tasks run on pool workers in FIFO order,
  /// interleaved with parallel_for chunks; idle workers prefer helping an
  /// in-flight parallel_for before starting the next task (so fan-out work
  /// finishes at low latency), but never twice in a row while tasks wait,
  /// so sustained parallel_for traffic cannot starve the task queue. A
  /// nested parallel_for made by a task
  /// participates in this pool (see parallel_for). When the pool has no
  /// workers the task runs inline in post() before it returns, so a
  /// single-threaded pool degrades to synchronous execution. Tasks must not
  /// throw, and must not block on other posted tasks (workers do not reenter
  /// the queue while a task runs). Tasks still queued when the pool is
  /// destroyed are dropped.
  void post(std::function<void()> task);

  /// Shared process-wide pool sized to the hardware.
  static ThreadPool& global();

 private:
  struct Job;
  void worker_loop();

  std::vector<std::thread> workers_;
  struct State;
  std::unique_ptr<State> state_;
};

/// Process-wide kill switch: when disabled, every parallel_for runs serially
/// on the calling thread. Used by the equivalence tests and the bench
/// harness's serial-vs-parallel ablation.
void set_parallelism_enabled(bool enabled) noexcept;
[[nodiscard]] bool parallelism_enabled() noexcept;

/// Convenience: chunked parallel loop over [0, count) on the global pool.
/// Serial when parallelism is disabled, the pool has one thread, or the
/// range is smaller than `min_per_thread`.
void parallel_for_rows(std::size_t count, const ThreadPool::RangeFn& fn,
                       std::size_t min_per_thread = 8);

}  // namespace qvg
