// Fixed-size thread pool with a blocking `parallel_for` over contiguous
// index ranges and a fire-and-forget `post()` task queue. No work stealing,
// no task futures: one range-job runs at a time and the calling thread
// participates, so a single-threaded pool degrades to a plain serial loop.
// Used to row-parallelize the batched raster evaluation
// (DeviceSimulator::evaluate_raster) and the dense image scans of the
// Canny/Hough baseline; the service layer's JobQueue runs async extraction
// jobs through post().
//
// All users split work so that each index writes disjoint output, which
// keeps parallel results bit-identical to serial ones regardless of thread
// count or chunk schedule.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace qvg {

class ThreadPool {
 public:
  /// Spawn `thread_count` workers in addition to the calling thread;
  /// 0 means auto: the QVG_THREADS environment variable (total threads
  /// including the caller, clamped to 1024) when set to a positive
  /// integer, otherwise hardware_concurrency - 1 (so pool size == core
  /// count). QVG_THREADS makes multi-core re-measurement a one-variable
  /// experiment: QVG_THREADS=4 bench_json records threads=4 in every
  /// scenario. Malformed or non-positive values fall back to hardware
  /// sizing.
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the participating caller.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  using RangeFn = std::function<void(std::size_t, std::size_t)>;

  /// Run fn(lo, hi) over disjoint chunks covering [begin, end). Blocks until
  /// every chunk has finished; the calling thread executes chunks too. The
  /// first exception thrown by `fn` is rethrown here. Nested calls from
  /// inside a chunk run serially inline.
  void parallel_for(std::size_t begin, std::size_t end, const RangeFn& fn,
                    std::size_t min_chunk = 1);

  /// Enqueue a fire-and-forget task. Tasks run on pool workers in FIFO order,
  /// interleaved with parallel_for chunks; nested parallel_for calls made by
  /// a task run inline (serial) on that worker. When the pool has no workers
  /// the task runs inline in post() before it returns, so a single-threaded
  /// pool degrades to synchronous execution. Tasks must not throw, and must
  /// not block on other posted tasks (workers do not reenter the queue while
  /// a task runs). Tasks still queued when the pool is destroyed are dropped.
  void post(std::function<void()> task);

  /// Shared process-wide pool sized to the hardware.
  static ThreadPool& global();

 private:
  struct Job;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  // guarded by the job mutex inside Job machinery
  struct State;
  std::unique_ptr<State> state_;
};

/// Process-wide kill switch: when disabled, every parallel_for runs serially
/// on the calling thread. Used by the equivalence tests and the bench
/// harness's serial-vs-parallel ablation.
void set_parallelism_enabled(bool enabled) noexcept;
[[nodiscard]] bool parallelism_enabled() noexcept;

/// Convenience: chunked parallel loop over [0, count) on the global pool.
/// Serial when parallelism is disabled, the pool has one thread, or the
/// range is smaller than `min_per_thread`.
void parallel_for_rows(std::size_t count, const ThreadPool::RangeFn& fn,
                       std::size_t min_per_thread = 8);

}  // namespace qvg
