// 2-D geometry primitives used throughout the extraction pipeline.
//
// Coordinate convention (see DESIGN.md §2): x is the VP1 axis (column index
// increases rightward), y is the VP2 axis (row index increases upward).
// Charge-state region (0,0) sits at low x / low y. Both transition lines have
// negative slope; the (0,0)->(1,0) line is steep, the (0,0)->(0,1) line is
// shallow.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>
#include <optional>

namespace qvg {

/// Continuous point in voltage (or pixel-center) space.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }
  friend bool operator==(const Point2&, const Point2&) = default;
};

std::ostream& operator<<(std::ostream& os, const Point2& p);

/// Integer pixel coordinate: x = column index, y = row index.
struct Pixel {
  int x = 0;
  int y = 0;

  friend bool operator==(const Pixel&, const Pixel&) = default;
  friend auto operator<=>(const Pixel&, const Pixel&) = default;

  [[nodiscard]] Point2 center() const {
    return {static_cast<double>(x), static_cast<double>(y)};
  }
};

std::ostream& operator<<(std::ostream& os, const Pixel& p);

[[nodiscard]] double distance(Point2 a, Point2 b);
[[nodiscard]] double distance(Pixel a, Pixel b);

/// An infinite, non-vertical line y = slope * x + intercept.
class Line2 {
 public:
  Line2() = default;
  Line2(double slope, double intercept) : slope_(slope), intercept_(intercept) {}

  /// Line through two points. Throws ContractViolation when the points share
  /// an x coordinate (vertical line) — callers in this library always work
  /// with finite-slope transition lines.
  static Line2 through(Point2 a, Point2 b);

  [[nodiscard]] double slope() const noexcept { return slope_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

  [[nodiscard]] double y_at(double x) const noexcept {
    return slope_ * x + intercept_;
  }
  /// x where the line attains the given y. Requires a non-horizontal line.
  [[nodiscard]] double x_at(double y) const;

  /// Intersection of two lines; nullopt when (near-)parallel.
  [[nodiscard]] std::optional<Point2> intersect(const Line2& other) const;

  /// Perpendicular distance from a point to this line.
  [[nodiscard]] double distance_to(Point2 p) const;

 private:
  double slope_ = 0.0;
  double intercept_ = 0.0;
};

/// The paper's critical region (§4.2, Figure 4): the right triangle spanned by
/// anchor A (on the shallow (0,0)->(0,1) line, upper-left) and anchor B (on
/// the steep (0,0)->(1,0) line, lower-right). The right-angle vertex is at
/// (B.x, A.y); the hypotenuse runs from A to B. Both transition lines are
/// guaranteed to lie inside this region when the slope priors hold.
class TriangleRegion {
 public:
  /// Requires A strictly left of and above B.
  TriangleRegion(Point2 anchor_a, Point2 anchor_b);

  [[nodiscard]] Point2 anchor_a() const noexcept { return a_; }
  [[nodiscard]] Point2 anchor_b() const noexcept { return b_; }
  [[nodiscard]] Point2 right_angle_vertex() const noexcept {
    return {b_.x, a_.y};
  }
  [[nodiscard]] Line2 hypotenuse() const { return Line2::through(a_, b_); }

  /// True when the point lies inside or on the boundary of the triangle.
  /// The paper uses the pixel *center* for this test (§4.3.2).
  [[nodiscard]] bool contains(Point2 p) const;

  /// Horizontal segment of the triangle at height y: [x_min, x_max], or
  /// nullopt when the row does not intersect the region.
  [[nodiscard]] std::optional<std::pair<double, double>> row_span(double y) const;

  /// Vertical segment of the triangle at abscissa x: [y_min, y_max], or
  /// nullopt when the column does not intersect the region.
  [[nodiscard]] std::optional<std::pair<double, double>> col_span(double x) const;

  /// Move anchor B (used by the row-major sweep as it climbs) while keeping
  /// A fixed. The new anchor must stay right of / below A.
  void move_anchor_b(Point2 b);

  /// Move anchor A (used by the column-major sweep) while keeping B fixed.
  void move_anchor_a(Point2 a);

  [[nodiscard]] double area() const noexcept;

 private:
  Point2 a_;  // upper-left anchor (shallow line)
  Point2 b_;  // lower-right anchor (steep line)
};

/// Angle in degrees between two lines given by their slopes (0..90].
[[nodiscard]] double angle_between_slopes_deg(double m1, double m2);

}  // namespace qvg
