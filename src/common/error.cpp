#include "common/error.hpp"

// Exception classes are header-only; this TU anchors the library and keeps a
// home for future out-of-line error utilities.
namespace qvg {}
