#include "common/logging.hpp"

namespace qvg {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug]";
    case LogLevel::kInfo:  return "[info ]";
    case LogLevel::kWarn:  return "[warn ]";
    case LogLevel::kError: return "[error]";
    case LogLevel::kOff:   return "[off  ]";
  }
  return "[?    ]";
}

}  // namespace

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::ostream& os = stream_ != nullptr ? *stream_ : std::clog;
  os << "qvg " << level_tag(level) << ' ' << message << '\n';
}

}  // namespace qvg
