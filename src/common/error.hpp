// Error-handling vocabulary for the qvg library.
//
// Policy (per C++ Core Guidelines E.*):
//  * Programmer errors (contract violations) throw ContractViolation.
//  * Environmental errors (I/O, parse) throw IoError / ParseError.
//  * *Expected* domain outcomes — e.g. "extraction failed on this noisy
//    device" — are not exceptional; they are reported through result structs
//    or Expected<T>.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace qvg {

/// Base class of all qvg exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A precondition, postcondition, or invariant was violated (programmer bug).
class ContractViolation : public Error {
 public:
  using Error::Error;
};

/// File or stream I/O failed.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Input data could not be parsed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Numerical routine failed to converge or encountered a singular system.
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Minimal expected-value type for operations whose failure is an ordinary,
/// reportable outcome (std::expected is C++23; we target C++20).
template <typename T>
class Expected {
 public:
  /// Construct a success value.
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Construct a failure carrying a human-readable reason.
  static Expected failure(std::string reason) {
    Expected e;
    e.reason_ = std::move(reason);
    return e;
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  /// Access the success value. Throws ContractViolation when empty.
  [[nodiscard]] const T& value() const& {
    if (!value_) throw ContractViolation("Expected::value() on failure: " + reason_);
    return *value_;
  }
  [[nodiscard]] T& value() & {
    if (!value_) throw ContractViolation("Expected::value() on failure: " + reason_);
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!value_) throw ContractViolation("Expected::value() on failure: " + reason_);
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Failure reason; empty string when the Expected holds a value.
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

  /// Return the value or a fallback.
  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string reason_;
};

}  // namespace qvg
