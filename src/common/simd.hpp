// Portable fixed-width SIMD shim over compiler vector extensions.
//
// Design rules (DESIGN/ROADMAP perf convention: every fast path is pinned to
// its scalar reference):
//
//  * Fixed width, selected at compile time — no runtime dispatch. VecD is
//    always kDoubleLanes doubles and VecF kFloatLanes floats, on every
//    build. Kernels structure their loops around these constants, so the
//    chunking (and therefore the tail handling) is identical whether the
//    backing store is a native vector register or a plain array.
//  * Bit-identical lanes. Every operation is defined element-wise with the
//    exact IEEE semantics of the corresponding scalar expression (no FMA
//    contraction is introduced by the shim itself: `a * b + c` on GNU vector
//    types contracts only where the scalar expression would contract too,
//    since both compile in the same translation unit under the same flags).
//    Callers that keep per-output accumulation order unchanged get results
//    bit-identical to their scalar reference loops — that invariant, not
//    this header, is what the kernel equivalence tests pin.
//  * QVG_NO_SIMD (compile definition, CMake -DQVG_NO_SIMD=ON) or a non-GNU
//    compiler selects the scalar-array fallback with the same lane count and
//    the same per-lane arithmetic, so ablation builds change performance
//    only, never results.
//
// Math helpers (sqrt / floor / min / max) are deliberately per-lane scalar
// calls: libm is not vectorizable under default errno semantics, and
// per-lane keeps them bit-identical to the scalar reference by construction.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstring>

#if !defined(QVG_NO_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define QVG_SIMD_NATIVE 1
#else
#define QVG_SIMD_NATIVE 0
#endif

namespace qvg::simd {

inline constexpr std::size_t kDoubleLanes = 4;
inline constexpr std::size_t kFloatLanes = 8;

/// True when the native vector-extension backend is compiled in (recorded in
/// the bench metadata so snapshot numbers are attributable).
inline constexpr bool kNative = QVG_SIMD_NATIVE != 0;

/// Fixed-width lane vector. T is double or float; N the lane count.
template <typename T, std::size_t N>
struct Vec {
  static constexpr std::size_t kLanes = N;
#if QVG_SIMD_NATIVE
  typedef T Native __attribute__((vector_size(N * sizeof(T)),
                                  aligned(alignof(T))));
#else
  struct Native {
    T lane[N];
  };
#endif
  Native v;

  /// Unaligned load of N consecutive elements.
  static Vec load(const T* p) noexcept {
    Vec r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }
  static Vec broadcast(T x) noexcept {
    Vec r;
    for (std::size_t i = 0; i < N; ++i) r.set(i, x);
    return r;
  }
  static Vec zero() noexcept { return broadcast(T{}); }

  /// Unaligned store of N consecutive elements.
  void store(T* p) const noexcept { std::memcpy(p, &v, sizeof(v)); }

  T operator[](std::size_t i) const noexcept {
#if QVG_SIMD_NATIVE
    return v[i];
#else
    return v.lane[i];
#endif
  }
  void set(std::size_t i, T x) noexcept {
#if QVG_SIMD_NATIVE
    v[i] = x;
#else
    v.lane[i] = x;
#endif
  }

#if QVG_SIMD_NATIVE
  friend Vec operator+(Vec a, Vec b) noexcept { return Vec{a.v + b.v}; }
  friend Vec operator-(Vec a, Vec b) noexcept { return Vec{a.v - b.v}; }
  friend Vec operator*(Vec a, Vec b) noexcept { return Vec{a.v * b.v}; }
  friend Vec operator/(Vec a, Vec b) noexcept { return Vec{a.v / b.v}; }
#else
  friend Vec operator+(Vec a, Vec b) noexcept {
    Vec r;
    for (std::size_t i = 0; i < N; ++i) r.set(i, a[i] + b[i]);
    return r;
  }
  friend Vec operator-(Vec a, Vec b) noexcept {
    Vec r;
    for (std::size_t i = 0; i < N; ++i) r.set(i, a[i] - b[i]);
    return r;
  }
  friend Vec operator*(Vec a, Vec b) noexcept {
    Vec r;
    for (std::size_t i = 0; i < N; ++i) r.set(i, a[i] * b[i]);
    return r;
  }
  friend Vec operator/(Vec a, Vec b) noexcept {
    Vec r;
    for (std::size_t i = 0; i < N; ++i) r.set(i, a[i] / b[i]);
    return r;
  }
#endif
  Vec& operator+=(Vec o) noexcept { return *this = *this + o; }
  Vec& operator-=(Vec o) noexcept { return *this = *this - o; }
  Vec& operator*=(Vec o) noexcept { return *this = *this * o; }
};

using VecD = Vec<double, kDoubleLanes>;
using VecF = Vec<float, kFloatLanes>;

/// Per-lane std::sqrt (bit-identical to the scalar call on each lane).
template <typename T, std::size_t N>
inline Vec<T, N> sqrt(Vec<T, N> a) noexcept {
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) r.set(i, std::sqrt(a[i]));
  return r;
}

/// Per-lane std::floor.
template <typename T, std::size_t N>
inline Vec<T, N> floor(Vec<T, N> a) noexcept {
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) r.set(i, std::floor(a[i]));
  return r;
}

/// Per-lane minimum (the `b < a ? b : a` form std::min uses).
template <typename T, std::size_t N>
inline Vec<T, N> min(Vec<T, N> a, Vec<T, N> b) noexcept {
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) r.set(i, b[i] < a[i] ? b[i] : a[i]);
  return r;
}

/// Per-lane maximum.
template <typename T, std::size_t N>
inline Vec<T, N> max(Vec<T, N> a, Vec<T, N> b) noexcept {
  Vec<T, N> r;
  for (std::size_t i = 0; i < N; ++i) r.set(i, a[i] < b[i] ? b[i] : a[i]);
  return r;
}

}  // namespace qvg::simd
