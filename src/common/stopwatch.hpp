// Wall-clock stopwatch used to measure algorithm compute time, which the
// benches add on top of the simulated probe (dwell) time.
#pragma once

#include <chrono>

namespace qvg {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qvg
