#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <string>

namespace qvg {

namespace {

std::atomic<bool> g_parallel_enabled{true};

// Nonzero while this thread is executing a parallel_for *chunk*. A
// parallel_for issued from inside a chunk runs inline — that is the only
// re-entrant case that could deadlock (every chunk of the outer job could
// block waiting for inner-job chunks nobody is free to run). Workers at top
// level (running a posted task) carry depth 0, so an async job's nested
// parallel_for fans out across the pool like any other caller's.
thread_local int t_parallel_depth = 0;

/// QVG_THREADS (total threads including the caller) when set to a positive
/// integer, else 0 meaning "not configured". Clamped so a typo'd value (or
/// strtol saturation) cannot make the constructor spawn thousands of
/// threads and die on resource exhaustion.
std::size_t env_thread_override() {
  const char* env = std::getenv("QVG_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1) return 0;
  constexpr long kMaxThreads = 1024;
  return static_cast<std::size_t>(std::min(value, kMaxThreads));
}

}  // namespace

void set_parallelism_enabled(bool enabled) noexcept {
  g_parallel_enabled.store(enabled, std::memory_order_relaxed);
}

bool parallelism_enabled() noexcept {
  return g_parallel_enabled.load(std::memory_order_relaxed);
}

struct ThreadPool::Job {
  RangeFn fn;
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> pending{0};  // chunks not yet finished
  std::exception_ptr error;
  std::mutex error_mutex;

  /// Whether unclaimed chunks remain (cheap scheduler probe; claiming can
  /// still lose the race, which run_one handles).
  [[nodiscard]] bool has_unclaimed() const noexcept {
    return next.load(std::memory_order_relaxed) < end;
  }

  /// Claim and run one chunk. Returns false when the range is exhausted.
  bool run_one() {
    const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
    if (lo >= end) return false;
    const std::size_t hi = std::min(lo + chunk, end);
    ++t_parallel_depth;  // chunks must not re-enter the pool
    try {
      fn(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
    --t_parallel_depth;
    pending.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
};

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable work_cv;  // workers wait here for a job or a task
  std::condition_variable done_cv;  // parallel_for callers wait for completion
  std::deque<std::function<void()>> tasks;  // post() queue, FIFO
  // Range jobs that may still have unclaimed chunks. Each parallel_for
  // caller registers its job here, participates, and removes it when done;
  // several jobs can be active at once (concurrent callers, or posted tasks
  // fanning out). Workers scan in registration order.
  std::vector<std::shared_ptr<Job>> jobs;
  bool stop = false;

  /// First registered job with unclaimed chunks, nullptr when none.
  [[nodiscard]] std::shared_ptr<Job> runnable_job() const {
    for (const auto& job : jobs)
      if (job->has_unclaimed()) return job;
    return nullptr;
  }
};

ThreadPool::ThreadPool(std::size_t thread_count)
    : state_(std::make_unique<State>()) {
  if (thread_count == 0) {
    if (const std::size_t total = env_thread_override(); total > 0) {
      thread_count = total - 1;  // caller participates as the extra thread
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      thread_count = hw > 1 ? hw - 1 : 0;
    }
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  // Bounded preference for range jobs: helping an in-flight parallel_for
  // first keeps fan-out latency low (its caller is blocked on it), but a
  // worker never helps two jobs in a row while tasks wait — otherwise
  // sustained overlapping parallel_for traffic could starve the FIFO task
  // queue (and with it the JobQueue drain tasks) indefinitely.
  bool helped_last = false;
  std::unique_lock<std::mutex> lock(state_->mutex);
  for (;;) {
    state_->work_cv.wait(lock, [&] {
      return state_->stop || !state_->tasks.empty() ||
             state_->runnable_job() != nullptr;
    });
    if (state_->stop) return;
    std::shared_ptr<Job> job;
    if (!(helped_last && !state_->tasks.empty())) job = state_->runnable_job();
    if (job) {
      helped_last = true;
      lock.unlock();
      while (job->run_one()) {
      }
      // Range exhausted. The thread that finished the last chunk wakes the
      // caller; notifying under the mutex avoids the lost-wakeup race with
      // the caller's predicate check.
      lock.lock();
      if (job->pending.load(std::memory_order_acquire) == 0)
        state_->done_cv.notify_all();
      continue;
    }
    if (!state_->tasks.empty()) {
      helped_last = false;
      std::function<void()> task = std::move(state_->tasks.front());
      state_->tasks.pop_front();
      lock.unlock();
      task();  // contract: tasks do not throw
      lock.lock();
    }
  }
}

void ThreadPool::post(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers to hand the task to: degrade to synchronous execution.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->tasks.push_back(std::move(task));
  }
  state_->work_cv.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const RangeFn& fn, std::size_t min_chunk) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  if (workers_.empty() || t_parallel_depth > 0 || count <= min_chunk) {
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = [&fn, begin](std::size_t lo, std::size_t hi) {
    fn(begin + lo, begin + hi);
  };
  // Oversubscribe chunks ~4x the pool size for load balance, subject to the
  // caller's minimum chunk size.
  const std::size_t target_chunks =
      std::min(count, std::max<std::size_t>(1, size() * 4));
  job->chunk = std::max(min_chunk, (count + target_chunks - 1) / target_chunks);
  job->end = count;
  job->pending.store((count + job->chunk - 1) / job->chunk,
                     std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->jobs.push_back(job);
  }
  state_->work_cv.notify_all();

  while (job->run_one()) {
  }

  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->done_cv.wait(lock, [&] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
    auto& jobs = state_->jobs;
    jobs.erase(std::find(jobs.begin(), jobs.end(), job));
  }

  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_rows(std::size_t count, const ThreadPool::RangeFn& fn,
                       std::size_t min_per_thread) {
  if (count == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (!parallelism_enabled() || pool.size() == 1 ||
      count < min_per_thread * 2) {
    fn(0, count);
    return;
  }
  pool.parallel_for(0, count, fn, min_per_thread);
}

}  // namespace qvg
