#include "common/status.hpp"

namespace qvg {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kAnchorNotFound: return "anchor_not_found";
    case ErrorCode::kInsufficientPoints: return "insufficient_points";
    case ErrorCode::kFitFailed: return "fit_failed";
    case ErrorCode::kDegenerateVirtualization:
      return "degenerate_virtualization";
    case ErrorCode::kLineNotFound: return "line_not_found";
    case ErrorCode::kPairFailed: return "pair_failed";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kBudgetExhausted: return "budget_exhausted";
    case ErrorCode::kProbeTransient: return "probe_transient";
    case ErrorCode::kProbeHardFault: return "probe_hard_fault";
    case ErrorCode::kDeviceDrifted: return "device_drifted";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

Status Status::failure(ErrorCode code, std::string stage, std::string detail) {
  if (code == ErrorCode::kOk)
    throw ContractViolation("Status::failure called with ErrorCode::kOk");
  return Status(code, std::move(stage), std::move(detail));
}

std::string Status::message() const {
  if (ok()) return {};
  if (stage_.empty()) return detail_;
  if (detail_.empty()) return stage_;
  return stage_ + ": " + detail_;
}

}  // namespace qvg
