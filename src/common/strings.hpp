// Small text-formatting helpers for tables and reports.
#pragma once

#include <string>
#include <vector>

namespace qvg {

/// Format a double with fixed precision (like printf "%.{digits}f").
[[nodiscard]] std::string format_fixed(double value, int digits);

/// Left-pad (align right) a string to the given width with spaces.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad (align left) a string to the given width with spaces.
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// Split a string on a delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char delim);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string trim(const std::string& s);

/// Render a simple aligned text table. Every row must have the same number of
/// columns as `header`. Used by the bench harnesses to print Table-1-style
/// summaries.
[[nodiscard]] std::string render_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace qvg
