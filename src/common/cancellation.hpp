// Cooperative cancellation for asynchronous jobs.
//
// A CancelToken is a copyable handle on a shared atomic flag. The service
// layer hands one token to the job runner and one to the caller (inside the
// JobHandle); cancel() flips the flag, and the probe/extraction loops poll
// cancelled() between probe batches — cancellation is cooperative and
// batch-granular, never mid-batch, so partial results stay well-defined.
//
// A default-constructed token is *non-cancellable*: it carries no shared
// state, cancelled() is always false, and the fast paths can treat it as
// "unlimited" without ever touching an atomic. CancelToken::make() creates a
// fresh cancellable token.
#pragma once

#include <atomic>
#include <memory>

namespace qvg {

class CancelToken {
 public:
  /// Non-cancellable token (no shared flag; cancelled() is always false).
  CancelToken() = default;

  /// A fresh cancellable token. Copies share the flag.
  [[nodiscard]] static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Whether this token can ever fire (i.e. was created by make()).
  [[nodiscard]] bool can_cancel() const noexcept { return flag_ != nullptr; }

  /// Request cancellation. Every copy of the token observes it. No-op on a
  /// non-cancellable token.
  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace qvg
