#include "common/geometry.hpp"

#include "common/assert.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <ostream>

namespace qvg {

std::ostream& operator<<(std::ostream& os, const Point2& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Pixel& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

double distance(Point2 a, Point2 b) { return std::hypot(a.x - b.x, a.y - b.y); }

double distance(Pixel a, Pixel b) {
  return std::hypot(static_cast<double>(a.x - b.x),
                    static_cast<double>(a.y - b.y));
}

Line2 Line2::through(Point2 a, Point2 b) {
  QVG_EXPECTS(std::abs(b.x - a.x) > 1e-12);
  const double slope = (b.y - a.y) / (b.x - a.x);
  return Line2(slope, a.y - slope * a.x);
}

double Line2::x_at(double y) const {
  QVG_EXPECTS(std::abs(slope_) > 1e-12);
  return (y - intercept_) / slope_;
}

std::optional<Point2> Line2::intersect(const Line2& other) const {
  const double dm = slope_ - other.slope_;
  if (std::abs(dm) < 1e-12) return std::nullopt;
  const double x = (other.intercept_ - intercept_) / dm;
  return Point2{x, y_at(x)};
}

double Line2::distance_to(Point2 p) const {
  // Line as slope*x - y + intercept = 0.
  return std::abs(slope_ * p.x - p.y + intercept_) /
         std::sqrt(slope_ * slope_ + 1.0);
}

TriangleRegion::TriangleRegion(Point2 anchor_a, Point2 anchor_b)
    : a_(anchor_a), b_(anchor_b) {
  QVG_EXPECTS(a_.x < b_.x);
  QVG_EXPECTS(a_.y > b_.y);
}

bool TriangleRegion::contains(Point2 p) const {
  if (p.x > b_.x || p.y > a_.y) return false;
  // On or above the hypotenuse from A to B.
  const Line2 hyp = hypotenuse();
  return p.y >= hyp.y_at(p.x) - 1e-12;
}

std::optional<std::pair<double, double>> TriangleRegion::row_span(double y) const {
  if (y > a_.y || y < b_.y) return std::nullopt;
  const Line2 hyp = hypotenuse();
  // hyp has negative slope, so x_at is well defined.
  const double x_lo = std::max(hyp.x_at(y), a_.x);
  const double x_hi = b_.x;
  if (x_lo > x_hi) return std::nullopt;
  return std::pair{x_lo, x_hi};
}

std::optional<std::pair<double, double>> TriangleRegion::col_span(double x) const {
  if (x < a_.x || x > b_.x) return std::nullopt;
  const Line2 hyp = hypotenuse();
  const double y_lo = std::max(hyp.y_at(x), b_.y);
  const double y_hi = a_.y;
  if (y_lo > y_hi) return std::nullopt;
  return std::pair{y_lo, y_hi};
}

void TriangleRegion::move_anchor_b(Point2 b) {
  QVG_EXPECTS(a_.x < b.x);
  QVG_EXPECTS(a_.y > b.y);
  b_ = b;
}

void TriangleRegion::move_anchor_a(Point2 a) {
  QVG_EXPECTS(a.x < b_.x);
  QVG_EXPECTS(a.y > b_.y);
  a_ = a;
}

double TriangleRegion::area() const noexcept {
  return 0.5 * (b_.x - a_.x) * (a_.y - b_.y);
}

double angle_between_slopes_deg(double m1, double m2) {
  const double a1 = std::atan(m1);
  const double a2 = std::atan(m2);
  double deg = std::abs(a1 - a2) * 180.0 / std::numbers::pi;
  if (deg > 90.0) deg = 180.0 - deg;
  return deg;
}

}  // namespace qvg
