#include "dataset/csd_io.hpp"

#include "common/assert.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace qvg {

void save_csd_csv(const Csd& csd, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  os.precision(17);
  os << "# qvg-csd " << csd.width() << ' ' << csd.height() << ' '
     << csd.x_axis().start() << ' ' << csd.x_axis().step() << ' '
     << csd.y_axis().start() << ' ' << csd.y_axis().step() << '\n';
  if (csd.truth()) {
    const auto& t = *csd.truth();
    os << "# truth " << t.slope_steep << ' ' << t.slope_shallow << ' '
       << t.triple_point.x << ' ' << t.triple_point.y << '\n';
  }
  for (std::size_t y = 0; y < csd.height(); ++y) {
    for (std::size_t x = 0; x < csd.width(); ++x) {
      if (x > 0) os << ',';
      os << csd.grid()(x, y);
    }
    os << '\n';
  }
  if (!os) throw IoError("write failed: " + path);
}

Csd load_csd_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(is, line)) throw ParseError("empty file: " + path);
  std::istringstream header(line);
  std::string hash;
  std::string tag;
  std::size_t width = 0;
  std::size_t height = 0;
  double x_start = 0;
  double x_step = 0;
  double y_start = 0;
  double y_step = 0;
  header >> hash >> tag >> width >> height >> x_start >> x_step >> y_start >>
      y_step;
  if (hash != "#" || tag != "qvg-csd" || width == 0 || height == 0 ||
      x_step <= 0 || y_step <= 0)
    throw ParseError("bad qvg-csd header in " + path);

  Csd csd(VoltageAxis(x_start, x_step, width),
          VoltageAxis(y_start, y_step, height));

  std::size_t y = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream truth_line(line);
      std::string hash2;
      std::string tag2;
      truth_line >> hash2 >> tag2;
      if (tag2 == "truth") {
        TransitionTruth t;
        truth_line >> t.slope_steep >> t.slope_shallow >> t.triple_point.x >>
            t.triple_point.y;
        if (!truth_line) throw ParseError("bad truth line in " + path);
        csd.set_truth(t);
      }
      continue;
    }
    if (y >= height) throw ParseError("too many data rows in " + path);
    const auto fields = split(line, ',');
    if (fields.size() != width)
      throw ParseError("row " + std::to_string(y) + " has " +
                       std::to_string(fields.size()) + " fields, expected " +
                       std::to_string(width) + " in " + path);
    for (std::size_t x = 0; x < width; ++x) {
      try {
        csd.grid()(x, y) = std::stod(fields[x]);
      } catch (const std::exception&) {
        throw ParseError("bad number '" + fields[x] + "' in " + path);
      }
    }
    ++y;
  }
  if (y != height) throw ParseError("missing data rows in " + path);
  return csd;
}

Result<Csd> try_load_csd_csv(const std::string& path) {
  try {
    return load_csd_csv(path);
  } catch (const ParseError& error) {
    return Status::failure(ErrorCode::kParseError, "csd_io", error.what());
  } catch (const IoError& error) {
    return Status::failure(ErrorCode::kIoError, "csd_io", error.what());
  }
}

void save_csd_pgm(const Csd& csd, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open for writing: " + path);
  const auto [lo, hi] = csd.current_range();
  const double scale = hi - lo > 1e-300 ? 255.0 / (hi - lo) : 0.0;
  os << "P5\n" << csd.width() << ' ' << csd.height() << "\n255\n";
  // PGM rows go top to bottom; our y axis points up, so flip.
  for (std::size_t row = 0; row < csd.height(); ++row) {
    const std::size_t y = csd.height() - 1 - row;
    for (std::size_t x = 0; x < csd.width(); ++x) {
      const double v = (csd.grid()(x, y) - lo) * scale;
      const auto byte = static_cast<unsigned char>(
          std::clamp(v, 0.0, 255.0));
      os.put(static_cast<char>(byte));
    }
  }
  if (!os) throw IoError("write failed: " + path);
}

void save_points_csv(const std::vector<Point2>& points,
                     const std::string& path) {
  std::ofstream os(path);
  if (!os) throw IoError("cannot open for writing: " + path);
  os.precision(17);
  os << "x,y\n";
  for (const auto& p : points) os << p.x << ',' << p.y << '\n';
  if (!os) throw IoError("write failed: " + path);
}

}  // namespace qvg
