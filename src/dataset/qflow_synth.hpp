// Synthetic stand-in for the qflow v2 experimental benchmark (paper §5.1).
//
// The paper evaluates on the 12 experimentally measured CSDs of the qflow
// dataset (Si/SiGe triple-dot device measured in double-dot configuration,
// cropped to the four-region area, final sizes 63x63 .. 200x200). That data
// is not redistributable here, so this module builds 12 simulated
// benchmarks with the same pixel sizes and calibrated noise tiers
// (DESIGN.md §3):
//
//   * CSD 1, 2  (200x200): heavy noise — both methods are expected to fail,
//     like the two qflow devices the paper reports as too noisy.
//   * CSD 7     (100x100): faint steep line + moderate noise — Canny/Hough
//     cannot assemble enough edge points, while the sweeps still find the
//     maximum-gradient ridge (the paper's baseline-only failure).
//   * All others: clean-to-moderate tiers where both methods succeed.
//
// Every benchmark is deterministic (fixed seeds) and carries analytic
// ground truth for the automated success verdicts.
#pragma once

#include "device/dot_array.hpp"
#include "grid/csd.hpp"
#include "probe/playback.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qvg {

struct QflowBenchmarkSpec {
  int index = 0;              // 1-based CSD index, matching Table 1
  std::size_t pixels = 100;   // square scan, pixels per axis
  std::uint64_t seed = 0;     // device jitter + noise seed
  double cross_ratio = 0.25;  // nearest-neighbour lever ratio of the device
  double device_jitter = 0.06;

  // Noise tier (sensor-current units; the ideal peak current is 1.0).
  double white_sigma = 0.02;
  double pink_sigma = 0.01;
  double telegraph_amplitude = 0.0;
  double telegraph_rate_hz = 0.5;

  /// Scales the sensor's charge sensitivity to dot 0 (the steep line's
  /// contrast); < 1 makes the steep line faint (benchmark 7).
  double dot0_sensitivity_scale = 1.0;

  /// Window fraction where dot 1's first-electron line sits (the shallow
  /// line's height, which also sets the triple point). Benchmark 7 places it
  /// low: the steep (0,0)->(1,0) segment below the triple point is then too
  /// short to clear the Hough vote threshold, while the sweeps still trace
  /// it point by point (the paper's baseline-only failure mode: "the edge
  /// detection in the baseline could not locate enough points to establish
  /// the line").
  double shallow_fraction = 0.48;

  std::string note;
};

/// The 12-benchmark suite specification, matching Table 1 sizes.
[[nodiscard]] std::vector<QflowBenchmarkSpec> qflow_suite_specs();

struct QflowBenchmark {
  QflowBenchmarkSpec spec;
  BuiltDevice device;
  /// Pre-measured noisy diagram (the replayed "experimental data"), with
  /// ground truth attached.
  Csd csd;

  [[nodiscard]] std::string name() const {
    return "csd" + std::to_string(spec.index);
  }
};

/// Build one benchmark: construct the jittered device, attach the noise
/// tier, and raster the full diagram once.
[[nodiscard]] QflowBenchmark build_qflow_benchmark(const QflowBenchmarkSpec& spec);

/// Build the whole suite (12 diagrams; the 200x200 entries dominate cost).
/// Benchmarks build concurrently on the global ThreadPool by default; the
/// result is bit-identical to a serial build (each diagram is deterministic
/// given its spec, and slots are filled by index).
[[nodiscard]] std::vector<QflowBenchmark> build_qflow_suite(
    bool parallel = true);

/// A playback CurrentSource over a benchmark's stored diagram, with the
/// paper's 50 ms dwell. (This mirrors §5.1: algorithms call the simulated
/// getCurrent, which returns data from the recorded CSD.)
[[nodiscard]] std::unique_ptr<CsdPlayback> make_playback(
    const QflowBenchmark& benchmark, double dwell_seconds = 0.050);

}  // namespace qvg
