// Charge-stability-diagram serialization: CSV (lossless, with axis header)
// and 8-bit PGM (for eyeballing diagrams in any image viewer).
#pragma once

#include "common/status.hpp"
#include "grid/csd.hpp"

#include <string>

namespace qvg {

/// Write a CSD as CSV. First line is a header
/// `# qvg-csd width height x_start x_step y_start y_step`, optionally
/// followed by `# truth slope_steep slope_shallow tx ty`; then height rows of
/// width comma-separated currents, bottom row (y = 0) first.
void save_csd_csv(const Csd& csd, const std::string& path);

/// Read a CSD written by save_csd_csv. Throws IoError / ParseError.
[[nodiscard]] Csd load_csd_csv(const std::string& path);

/// Non-throwing variant for callers (CLI tools, the extraction service) that
/// treat a missing or malformed file as an ordinary reportable outcome:
/// failures come back as a typed Status (kIoError / kParseError) instead of
/// an exception.
[[nodiscard]] Result<Csd> try_load_csd_csv(const std::string& path);

/// Write the diagram as a binary 8-bit PGM, min..max scaled; y = 0 is the
/// bottom image row (flipped for display convention).
void save_csd_pgm(const Csd& csd, const std::string& path);

/// Write a set of (x, y) voltage points as CSV with a one-line header.
void save_points_csv(const std::vector<Point2>& points,
                     const std::string& path);

}  // namespace qvg
