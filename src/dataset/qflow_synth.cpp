#include "dataset/qflow_synth.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

#include <memory>
#include <optional>

namespace qvg {

std::vector<QflowBenchmarkSpec> qflow_suite_specs() {
  std::vector<QflowBenchmarkSpec> specs;
  auto add = [&](int index, std::size_t pixels, double white, double pink,
                 double cross_ratio, double dot0_scale, std::string note) {
    QflowBenchmarkSpec s;
    s.index = index;
    s.pixels = pixels;
    s.seed = 0x51f0000ULL + static_cast<std::uint64_t>(index) * 7919ULL;
    s.white_sigma = white;
    s.pink_sigma = pink;
    s.cross_ratio = cross_ratio;
    s.dot0_sensitivity_scale = dot0_scale;
    s.note = std::move(note);
    specs.push_back(std::move(s));
  };

  // Sizes match Table 1. Noise tiers engineer the paper's outcome pattern:
  // 1-2 fail both methods, 7 defeats only the Hough baseline.
  add(1, 200, 0.50, 0.10, 0.24, 1.0, "very noisy device, both methods fail");
  add(2, 200, 0.60, 0.12, 0.28, 1.0, "very noisy device, both methods fail");
  add(3, 63, 0.030, 0.010, 0.22, 1.0, "small clean scan");
  add(4, 63, 0.025, 0.010, 0.30, 1.0, "small clean scan");
  add(5, 63, 0.020, 0.008, 0.26, 1.0, "small clean scan");
  add(6, 100, 0.025, 0.010, 0.25, 1.0, "medium scan");
  add(7, 100, 0.035, 0.010, 0.27, 0.20,
      "faint steep line: the baseline's fixed edge-detection thresholds "
      "cannot locate enough points to establish the line; the sweeps' "
      "local gradient argmax still traces it");
  add(8, 100, 0.035, 0.012, 0.23, 1.0, "medium scan, mild telegraph noise");
  add(9, 100, 0.020, 0.008, 0.26, 1.0, "medium scan");
  add(10, 100, 0.030, 0.010, 0.29, 1.0, "medium scan");
  add(11, 100, 0.022, 0.009, 0.21, 1.0, "medium scan");
  add(12, 200, 0.015, 0.006, 0.25, 1.0, "large clean scan");

  for (auto& spec : specs)
    if (spec.index == 8) spec.telegraph_amplitude = 0.02;  // mild RTS
  return specs;
}

QflowBenchmark build_qflow_benchmark(const QflowBenchmarkSpec& spec) {
  QVG_EXPECTS(spec.pixels >= 32);
  QVG_EXPECTS(spec.index >= 1);

  DotArrayParams params;
  params.n_dots = 2;
  params.cross_ratio = spec.cross_ratio;
  params.jitter = spec.device_jitter;
  params.transition_fraction_y = spec.shallow_fraction;

  Rng jitter_rng(spec.seed);
  BuiltDevice device = build_dot_array(params, &jitter_rng);
  if (spec.dot0_sensitivity_scale != 1.0)
    device.sensor.gamma[0] *= spec.dot0_sensitivity_scale;

  DeviceSimulator sim(device.model, device.sensor, device.base_voltages,
                      ScanPair{0, 1, 0, 1}, spec.seed ^ 0x9e37ULL,
                      /*dwell_seconds=*/0.050);
  if (spec.white_sigma > 0.0)
    sim.add_noise(std::make_unique<WhiteNoise>(spec.white_sigma));
  if (spec.pink_sigma > 0.0)
    sim.add_noise(std::make_unique<PinkNoise>(spec.pink_sigma,
                                              /*tau_min=*/0.2,
                                              /*tau_max=*/30.0));
  if (spec.telegraph_amplitude > 0.0)
    sim.add_noise(std::make_unique<TelegraphNoise>(spec.telegraph_amplitude,
                                                   spec.telegraph_rate_hz));

  const VoltageAxis axis = scan_axis(device, spec.pixels);
  QflowBenchmark benchmark{spec, std::move(device), Csd{}};
  benchmark.csd = sim.generate_csd(axis, axis, benchmark.name());
  return benchmark;
}

std::vector<QflowBenchmark> build_qflow_suite(bool parallel) {
  const auto specs = qflow_suite_specs();

  // Each benchmark is built from its spec alone (own jitter Rng, own
  // simulator and noise stream), so the 12 builds fan out over the pool.
  // Slots are preallocated and filled by index: the suite is bit-identical
  // to a serial build regardless of thread count. std::optional bridges
  // QflowBenchmark's lack of a default constructor.
  std::vector<std::optional<QflowBenchmark>> built(specs.size());
  auto build_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      built[i].emplace(build_qflow_benchmark(specs[i]));
  };
  if (parallel)
    parallel_for_rows(specs.size(), build_range, 1);
  else
    build_range(0, specs.size());

  std::vector<QflowBenchmark> suite;
  suite.reserve(built.size());
  for (auto& benchmark : built) suite.push_back(std::move(*benchmark));
  return suite;
}

std::unique_ptr<CsdPlayback> make_playback(const QflowBenchmark& benchmark,
                                           double dwell_seconds) {
  return std::make_unique<CsdPlayback>(benchmark.csd, dwell_seconds);
}

}  // namespace qvg
