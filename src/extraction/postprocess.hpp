// Post-processing filter of Algorithm 3: joins the two sweeps' points and
// removes erroneous ones.
//
// The true boundary of the (0,0) region is a monotone staircase (both
// transition lines have negative slope), and erroneous sweep points are
// biased toward the open upper-right interior of the triangle. Keeping, per
// x, the lowest point (errors from the row sweep are vetoed by accurate
// column-sweep points below them) and, per y, the leftmost point (errors
// from the column sweep are vetoed by accurate row-sweep points left of
// them), then taking the union, yields a clean point set on both lines.
#pragma once

#include "common/geometry.hpp"

#include <vector>

namespace qvg {

/// filteredPoints1 of Algorithm 3: for each x, the point with minimal y.
[[nodiscard]] std::vector<Pixel> keep_lowest_per_column(
    const std::vector<Pixel>& points);

/// filteredPoints2 of Algorithm 3: for each y, the point with minimal x.
[[nodiscard]] std::vector<Pixel> keep_leftmost_per_row(
    const std::vector<Pixel>& points);

/// Full post-processing: union of the two filters, deduplicated and sorted
/// by (x, y).
[[nodiscard]] std::vector<Pixel> postprocess_transition_points(
    const std::vector<Pixel>& points);

}  // namespace qvg
