#include "extraction/virtualization.hpp"

#include "common/assert.hpp"
#include "common/geometry.hpp"
#include "linalg/solve.hpp"

#include <algorithm>
#include <cmath>

namespace qvg {

Matrix VirtualGatePair::matrix() const {
  return Matrix{{1.0, alpha12}, {alpha21, 1.0}};
}

Expected<VirtualGatePair> virtualization_from_slopes(double slope_steep,
                                                     double slope_shallow) {
  if (!(slope_steep < 0.0) || !(slope_shallow < 0.0))
    return Expected<VirtualGatePair>::failure(
        "transition-line slopes must be negative");
  if (!(slope_steep < slope_shallow))
    return Expected<VirtualGatePair>::failure(
        "steep slope must be more negative than shallow slope");
  VirtualGatePair pair;
  pair.alpha12 = -1.0 / slope_steep;
  pair.alpha21 = -slope_shallow;
  return pair;
}

double transform_slope(const Matrix& m, double slope) {
  QVG_EXPECTS(m.rows() == 2 && m.cols() == 2);
  const double dx = m(0, 0) + m(0, 1) * slope;
  const double dy = m(1, 0) + m(1, 1) * slope;
  if (std::abs(dx) < 1e-12) return dy >= 0 ? 1e12 : -1e12;  // vertical
  return dy / dx;
}

double virtualized_angle_deg(const VirtualGatePair& pair, double slope_steep,
                             double slope_shallow) {
  const Matrix m = pair.matrix();
  return angle_between_slopes_deg(transform_slope(m, slope_steep),
                                  transform_slope(m, slope_shallow));
}

Csd warp_to_virtual(const Csd& csd, const VirtualGatePair& pair) {
  QVG_EXPECTS(csd.width() >= 2 && csd.height() >= 2);
  const Matrix m = pair.matrix();
  const Matrix m_inv = inverse(m);

  // Virtual-space bounding box of the four corners.
  const double x0 = csd.x_axis().start();
  const double x1 = csd.x_axis().end();
  const double y0 = csd.y_axis().start();
  const double y1 = csd.y_axis().end();
  double vx_min = 1e300;
  double vx_max = -1e300;
  double vy_min = 1e300;
  double vy_max = -1e300;
  for (const auto& corner :
       {Point2{x0, y0}, Point2{x1, y0}, Point2{x0, y1}, Point2{x1, y1}}) {
    const auto v = m.apply({corner.x, corner.y});
    vx_min = std::min(vx_min, v[0]);
    vx_max = std::max(vx_max, v[0]);
    vy_min = std::min(vy_min, v[1]);
    vy_max = std::max(vy_max, v[1]);
  }

  Csd out(VoltageAxis::over_range(vx_min, vx_max, csd.width()),
          VoltageAxis::over_range(vy_min, vy_max, csd.height()));
  out.set_name(csd.name().empty() ? "virtualized" : csd.name() + "_virtual");

  for (std::size_t py = 0; py < out.height(); ++py) {
    for (std::size_t px = 0; px < out.width(); ++px) {
      const Point2 vp = out.voltage_at(px, py);
      const auto physical = m_inv.apply({vp.x, vp.y});
      // Continuous pixel coordinates in the source, clamped to the border.
      double fx = csd.x_axis().index_of(physical[0]);
      double fy = csd.y_axis().index_of(physical[1]);
      fx = std::clamp(fx, 0.0, static_cast<double>(csd.width() - 1));
      fy = std::clamp(fy, 0.0, static_cast<double>(csd.height() - 1));
      const auto ix = static_cast<std::size_t>(fx);
      const auto iy = static_cast<std::size_t>(fy);
      const std::size_t ix1 = std::min(ix + 1, csd.width() - 1);
      const std::size_t iy1 = std::min(iy + 1, csd.height() - 1);
      const double tx = fx - static_cast<double>(ix);
      const double ty = fy - static_cast<double>(iy);
      const double top = csd.grid()(ix, iy1) * (1.0 - tx) + csd.grid()(ix1, iy1) * tx;
      const double bottom = csd.grid()(ix, iy) * (1.0 - tx) + csd.grid()(ix1, iy) * tx;
      out.grid()(px, py) = bottom * (1.0 - ty) + top * ty;
    }
  }
  return out;
}

Matrix compose_array_virtualization(const std::vector<VirtualGatePair>& pairs) {
  QVG_EXPECTS(!pairs.empty());
  const std::size_t n = pairs.size() + 1;
  Matrix m = Matrix::identity(n);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    m(i, i + 1) = pairs[i].alpha12;
    m(i + 1, i) = pairs[i].alpha21;
  }
  return m;
}

}  // namespace qvg
