// Preprocessing for the initial anchor points (paper §4.4).
//
// Steps, all expressed on the pixel lattice of the scan axes:
//  1. Probe ten equally spaced points along the lower-left -> upper-right
//     diagonal and find the brightest one.
//  2. The starting point is the brightest diagonal point or the (10% width,
//     10% height) point, whichever lies farther from the lower-left corner.
//  3. Sweep the paper's Mask_x along the x axis at the starting row; sweep
//     Mask_y along the y axis at the starting column. Each response array is
//     weighted by a 1-D Gaussian prior, and the argmax gives one anchor:
//     Mask_x yields anchor B on the steep (0,0)->(1,0) line, Mask_y yields
//     anchor A on the shallow (0,0)->(0,1) line.
//
// The paper does not specify the Gaussian's parameters; we centre it on the
// sweep start with sigma = 0.50 * range (documented substitution): the sweep
// starts inside the empty (0,0) region, so the prior prefers the *first*
// charge transition encountered and suppresses second-electron lines.
#pragma once

#include "common/geometry.hpp"
#include "common/status.hpp"
#include "grid/axis.hpp"
#include "probe/acquisition_context.hpp"
#include "probe/current_source.hpp"
#include "probe/driver/async_source.hpp"

#include <cstddef>
#include <vector>

namespace qvg {

struct AnchorOptions {
  int num_diagonal_points = 10;
  /// Fallback starting point as a fraction of width/height.
  double start_fraction = 0.10;
  /// Gaussian prior sigma as a fraction of the sweep length.
  double gaussian_sigma_fraction = 0.50;
  /// After the mask argmax, snap each anchor (within +/- this many pixels
  /// along its sweep axis) to the maximum of the Algorithm-2 feature
  /// gradient. The masks peak *on* the transition edge, whereas the sweeps
  /// report the bright-side gradient pixel; snapping puts the fit's fixed
  /// endpoints on the same convention (a one-pixel endpoint bias is a
  /// several-percent slope bias on small scans). 0 disables.
  int snap_radius = 2;
};

struct AnchorResult {
  /// Anchor A: on the shallow line, at the starting column (upper-left).
  Pixel anchor_a;
  /// Anchor B: on the steep line, at the starting row (lower-right).
  Pixel anchor_b;
  /// Starting point chosen by the diagonal probe.
  Pixel start;
  /// Diagnostics: raw (pre-Gaussian) mask responses along each sweep.
  std::vector<double> response_x;
  std::vector<double> response_y;
};

/// Locate the two initial anchor points. Fails typed (kAnchorNotFound, stage
/// "anchors") when the window is too small for the masks or no valid
/// triangle (A left of and above B) can be formed. The context is checked
/// between the probe batches (diagonal, each mask sweep, each snap scan); a
/// cancelled or expired job returns the interruption Status instead.
[[nodiscard]] Result<AnchorResult> find_anchor_points(
    CurrentSource& source, const VoltageAxis& x_axis, const VoltageAxis& y_axis,
    const AnchorOptions& options = {},
    const AcquisitionContext& context = {});

/// The same search over an explicit driver lane. Batches that do not depend
/// on each other — the two mask sweeps, the two snap scans — are submitted
/// back to back when driver.depth() >= 2, pipelining the transport's
/// command latency; at depth 1 (SyncSourceAdapter) every batch is submitted
/// strictly after the check that gates it, call-for-call identical to the
/// CurrentSource overload. Uninterrupted results are bit-identical at any
/// depth. The CurrentSource overload routes here through an
/// InstrumentDriver when context.transport is enabled, through the
/// SyncSourceAdapter otherwise.
[[nodiscard]] Result<AnchorResult> find_anchor_points(
    AsyncCurrentSource& driver, const VoltageAxis& x_axis,
    const VoltageAxis& y_axis, const AnchorOptions& options = {},
    const AcquisitionContext& context = {});

}  // namespace qvg
