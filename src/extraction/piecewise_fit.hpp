// Slope extraction (paper §4.3.3): fit a 2-piece-wise linear shape through
// the filtered transition points. The outer endpoints are fixed at the two
// initial anchor points; the only free parameters are the coordinates of
// the intersection point of the two lines. The paper fits with SciPy's
// curve_fit; we minimize the same least-squares objective with Nelder-Mead
// and polish with Levenberg-Marquardt.
#pragma once

#include "common/error.hpp"
#include "common/geometry.hpp"

#include <vector>

namespace qvg {

enum class FitResidual {
  /// Vertical distance to the piecewise function y(x) — closest to SciPy
  /// curve_fit on y = f(x). Over-weights errors on the near-vertical steep
  /// branch.
  kVertical,
  /// Euclidean distance to the nearest of the two segments — symmetric in
  /// both branches (default).
  kOrthogonal,
};

struct PiecewiseFitOptions {
  FitResidual residual = FitResidual::kOrthogonal;
  int max_iterations = 400;
  /// Initial intersection guess as a fraction of the way from the right-angle
  /// vertex toward the triangle interior.
  double initial_inset = 0.15;
  /// Huber robust-loss scale in pixels (0 = plain least squares). Real
  /// honeycombs have a short interdot segment near the triple point that the
  /// 2-piecewise model cannot represent; the robust loss keeps those corner
  /// points (and surviving sweep outliers) from dragging the intersection.
  double huber_delta_px = 1.5;
};

struct PiecewiseFit {
  /// Fitted intersection of the two transition lines (pixel coordinates).
  Point2 intersection;
  /// Slope of the shallow branch (anchor A -> intersection).
  double slope_shallow = 0.0;
  /// Slope of the steep branch (intersection -> anchor B).
  double slope_steep = 0.0;
  /// Root-mean-square residual at the optimum (pixels).
  double rms_residual = 0.0;
  int iterations = 0;
};

/// Fit the 2-piecewise-linear shape. anchor_a/anchor_b are the *initial*
/// anchors (fixed endpoints). Fails when there are fewer than 3 points or
/// the optimum degenerates (intersection outside the anchor box or slopes
/// with the wrong sign ordering).
[[nodiscard]] Expected<PiecewiseFit> fit_piecewise_linear(
    const std::vector<Pixel>& points, Pixel anchor_a, Pixel anchor_b,
    const PiecewiseFitOptions& options = {});

/// Distance from a point to the 2-piecewise path A->P->B (exposed for
/// tests and for the orthogonal residual).
[[nodiscard]] double distance_to_path(Point2 p, Point2 a, Point2 vertex,
                                      Point2 b);

}  // namespace qvg
