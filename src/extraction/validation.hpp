// On-device validation of an extracted virtualization matrix.
//
// After extraction, an experimentalist verifies "one-to-one" control by
// scanning along each *virtual* axis and checking that only the intended
// dot's transition moves. This module automates that check cheaply: it
// takes two short line scans in virtual coordinates across each transition
// line and measures how far the crossing point shifts when the *other*
// virtual gate changes. With perfect compensation the shift is zero; the
// residual cross-talk ratio approximates the error in the compensation
// coefficients. Costs O(points) probes — far cheaper than re-acquiring a
// diagram.
#pragma once

#include "common/error.hpp"
#include "extraction/virtualization.hpp"
#include "grid/axis.hpp"
#include "probe/current_source.hpp"

#include <string>

namespace qvg {

struct ValidationOptions {
  /// Points per line scan.
  std::size_t points_per_scan = 40;
  /// Separation between the two parallel scans, as a fraction of the window.
  double scan_separation_fraction = 0.25;
  /// Residual cross-talk ratio below which the matrix is accepted:
  /// |crossing shift| / |virtual-gate step|.
  double max_residual_crosstalk = 0.08;
};

struct LineScanCheck {
  /// Crossing position (in the scanned virtual coordinate) at the two
  /// offsets of the other virtual gate.
  double crossing_low = 0.0;
  double crossing_high = 0.0;
  /// |crossing_high - crossing_low| / (other-gate step): residual coupling.
  double residual_crosstalk = 0.0;
  bool crossing_found = false;
};

struct ValidationResult {
  bool accepted = false;
  std::string reason;
  /// Scan along V'1 (crossing the steep line): residual effect of V'2 on
  /// dot 1 — checks alpha12.
  LineScanCheck steep_check;
  /// Scan along V'2 (crossing the shallow line): residual effect of V'1 on
  /// dot 2 — checks alpha21.
  LineScanCheck shallow_check;
  long probes_used = 0;
};

/// Validate the pair's virtualization matrix against the device behind
/// `source`. The scan window axes must match the extraction window; the
/// `intersection` is the fitted triple point in physical voltage
/// coordinates (used to place the line scans on both sides of it).
[[nodiscard]] ValidationResult validate_virtual_gates(
    CurrentSource& source, const VoltageAxis& x_axis, const VoltageAxis& y_axis,
    const VirtualGatePair& gates, Point2 intersection,
    const ValidationOptions& options = {});

}  // namespace qvg
