#include "extraction/validation.hpp"

#include "common/assert.hpp"
#include "linalg/solve.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace qvg {

namespace {

/// Scan `points` probes along one virtual axis and locate the sharpest
/// current drop (the transition crossing). `axis_index` selects which
/// virtual coordinate is swept; the other is held at `fixed_value`.
/// Returns the crossing in the swept coordinate, or NaN.
double find_crossing(CurrentSource& source, const Matrix& m_inv,
                     int axis_index, double sweep_lo, double sweep_hi,
                     double fixed_value, std::size_t points, long& probes) {
  QVG_EXPECTS(points >= 8);
  std::vector<double> currents(points);
  const double step = (sweep_hi - sweep_lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double swept = sweep_lo + step * static_cast<double>(i);
    const std::vector<double> virtual_point =
        axis_index == 0 ? std::vector<double>{swept, fixed_value}
                        : std::vector<double>{fixed_value, swept};
    const auto physical = m_inv.apply(virtual_point);
    currents[i] = source.get_current(physical[0], physical[1]);
    ++probes;
  }
  // Sharpest drop between consecutive samples; smooth over a 2-sample
  // window to damp single-point noise.
  double best_drop = 0.0;
  std::size_t best_index = 0;
  for (std::size_t i = 1; i + 2 < points; ++i) {
    const double before = 0.5 * (currents[i - 1] + currents[i]);
    const double after = 0.5 * (currents[i + 1] + currents[i + 2]);
    const double drop = before - after;
    if (drop > best_drop) {
      best_drop = drop;
      best_index = i;
    }
  }
  // A genuine transition must dominate the scan's noise floor.
  double span = 0.0;
  for (std::size_t i = 0; i < points; ++i)
    span = std::max(span, std::abs(currents[i] - currents[0]));
  if (best_drop < 0.3 * span || best_index == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return sweep_lo + step * (static_cast<double>(best_index) + 0.5);
}

}  // namespace

ValidationResult validate_virtual_gates(CurrentSource& source,
                                        const VoltageAxis& x_axis,
                                        const VoltageAxis& y_axis,
                                        const VirtualGatePair& gates,
                                        Point2 intersection,
                                        const ValidationOptions& opt) {
  QVG_EXPECTS(opt.points_per_scan >= 8);
  QVG_EXPECTS(opt.scan_separation_fraction > 0.0 &&
              opt.scan_separation_fraction < 0.5);

  ValidationResult result;
  const Matrix m = gates.matrix();
  const Matrix m_inv = inverse(m);

  // Virtual-frame coordinates of the fitted intersection.
  const auto p_virtual = m.apply({intersection.x, intersection.y});
  const double span_x = x_axis.end() - x_axis.start();
  const double span_y = y_axis.end() - y_axis.start();
  const double sep_x = opt.scan_separation_fraction * span_x;
  const double sep_y = opt.scan_separation_fraction * span_y;

  // --- Check alpha12: two scans along V'1 at different V'2, below the
  // triple point, crossing the (now nominally vertical) steep line. -------
  {
    const double lo = p_virtual[0] - 0.8 * sep_x;
    const double hi = p_virtual[0] + 0.8 * sep_x;
    const double v2_low = p_virtual[1] - 1.6 * sep_y;
    const double v2_high = p_virtual[1] - 0.6 * sep_y;
    result.steep_check.crossing_low =
        find_crossing(source, m_inv, 0, lo, hi, v2_low, opt.points_per_scan,
                      result.probes_used);
    result.steep_check.crossing_high =
        find_crossing(source, m_inv, 0, lo, hi, v2_high, opt.points_per_scan,
                      result.probes_used);
    result.steep_check.crossing_found =
        std::isfinite(result.steep_check.crossing_low) &&
        std::isfinite(result.steep_check.crossing_high);
    if (result.steep_check.crossing_found) {
      result.steep_check.residual_crosstalk =
          std::abs(result.steep_check.crossing_high -
                   result.steep_check.crossing_low) /
          (v2_high - v2_low);
    }
  }

  // --- Check alpha21: two scans along V'2 at different V'1, left of the
  // triple point, crossing the (nominally horizontal) shallow line. -------
  {
    const double lo = p_virtual[1] - 0.8 * sep_y;
    const double hi = p_virtual[1] + 0.8 * sep_y;
    const double v1_low = p_virtual[0] - 1.6 * sep_x;
    const double v1_high = p_virtual[0] - 0.6 * sep_x;
    result.shallow_check.crossing_low =
        find_crossing(source, m_inv, 1, lo, hi, v1_low, opt.points_per_scan,
                      result.probes_used);
    result.shallow_check.crossing_high =
        find_crossing(source, m_inv, 1, lo, hi, v1_high, opt.points_per_scan,
                      result.probes_used);
    result.shallow_check.crossing_found =
        std::isfinite(result.shallow_check.crossing_low) &&
        std::isfinite(result.shallow_check.crossing_high);
    if (result.shallow_check.crossing_found) {
      result.shallow_check.residual_crosstalk =
          std::abs(result.shallow_check.crossing_high -
                   result.shallow_check.crossing_low) /
          (v1_high - v1_low);
    }
  }

  if (!result.steep_check.crossing_found) {
    result.reason = "steep-line validation scans found no transition";
    return result;
  }
  if (!result.shallow_check.crossing_found) {
    result.reason = "shallow-line validation scans found no transition";
    return result;
  }
  if (result.steep_check.residual_crosstalk > opt.max_residual_crosstalk) {
    result.reason = "residual VP2 -> dot 1 cross-talk " +
                    std::to_string(result.steep_check.residual_crosstalk) +
                    " exceeds tolerance";
    return result;
  }
  if (result.shallow_check.residual_crosstalk > opt.max_residual_crosstalk) {
    result.reason = "residual VP1 -> dot 2 cross-talk " +
                    std::to_string(result.shallow_check.residual_crosstalk) +
                    " exceeds tolerance";
    return result;
  }
  result.accepted = true;
  result.reason = "orthogonal control verified";
  return result;
}

}  // namespace qvg
