// The paper's Algorithm 3 sweeps: locate transition points inside the
// critical triangle with a row-major and a column-major sweep, dynamically
// shrinking the triangle after every found point.
//
// Geometry (DESIGN.md §2): anchor A = (on the shallow line, upper-left),
// anchor B = (on the steep line, lower-right); the triangle has its right
// angle at (B.x, A.y).
//
//  * Row-major sweep (bottom -> top): for each row between B and A, probe
//    the pixels inside the triangle, keep the maximum-feature-gradient pixel
//    as a transition point, and move anchor B to it. Tracks the steep line
//    accurately; segments get long (noise-prone) in the shallow-line region.
//  * Column-major sweep (left -> right): the transpose, moving anchor A.
//    Tracks the shallow line accurately.
#pragma once

#include "common/geometry.hpp"
#include "common/status.hpp"
#include "grid/axis.hpp"
#include "probe/acquisition_context.hpp"
#include "probe/current_source.hpp"
#include "probe/driver/async_source.hpp"

#include <vector>

namespace qvg {

struct SweepOptions {
  /// Cap on pixels probed per row/column segment; 0 means unlimited. Long
  /// segments only occur when the triangle degenerates, so a cap bounds the
  /// probe budget without changing well-behaved runs.
  std::size_t max_segment_pixels = 0;
  /// Extra pixels probed on each side of the triangle's segment. The
  /// idealized critical region assumes exact anchors; with an anchor off by
  /// one pixel the transition line can hug (or briefly exit) the triangle
  /// boundary near that anchor, starving the sweep of the line's gradient
  /// pixels and letting noise walk the moving anchor away from the line.
  /// One pixel of slack makes the sweeps robust to that at a small probe
  /// cost.
  int triangle_slack_pixels = 1;
  /// Bound on how far the moving anchor may advance per row/column, derived
  /// from the paper's slope priors: the shallow line falls less than one
  /// pixel per column (|m| < 1) and the steep line moves less than one pixel
  /// per row (|m| > 1), so a found point jumping farther than this toward
  /// the triangle interior is noise; the anchor update is clamped (the point
  /// itself is still reported and left to the post-processing filter).
  /// Prevents one bad pick from collapsing the triangle away from the line
  /// ("a falsely located point deviates the triangular region", §4.3.2).
  /// 0 disables the clamp (paper-literal behaviour).
  int max_anchor_step = 1;
  /// Run the respective sweep (ablation knobs; the paper runs both).
  bool run_row_sweep = true;
  bool run_col_sweep = true;
};

struct SweepPoint {
  Pixel pixel;
  double gradient = 0.0;
};

struct SweepResult {
  /// ok() when both enabled sweeps ran to completion; the interruption
  /// Status (kCancelled / kDeadlineExceeded / kBudgetExhausted, stage
  /// "sweeps") when the acquisition context stopped them early. The points collected before the
  /// interruption are retained.
  Status status;
  std::vector<SweepPoint> row_points;  // from the row-major sweep
  std::vector<SweepPoint> col_points;  // from the column-major sweep

  [[nodiscard]] std::vector<Pixel> all_pixels() const;
};

/// Run both sweeps from the given anchor pixels. Probing happens through
/// `source` on the pixel lattice defined by the axes (wrap the source in a
/// ProbeCache to share gradient neighbours between adjacent pixels and to
/// count unique probes). The context is checked before every row/column
/// segment batch; a cancelled or expired job stops at the next segment
/// boundary with the points found so far.
[[nodiscard]] SweepResult run_sweeps(CurrentSource& source,
                                     const VoltageAxis& x_axis,
                                     const VoltageAxis& y_axis, Pixel anchor_a,
                                     Pixel anchor_b,
                                     const SweepOptions& options = {},
                                     const AcquisitionContext& context = {});

/// The same sweeps over an explicit driver lane. Each segment's argmax
/// moves the anchor that shapes the next segment, so segments are
/// inherently serial — the driver still absorbs the per-batch transport
/// charge and keeps the cancellation boundary at the driver, but there is
/// no lookahead to pipeline. Results are bit-identical to the CurrentSource
/// overload, which routes here through an InstrumentDriver when
/// context.transport is enabled and through the SyncSourceAdapter
/// otherwise.
[[nodiscard]] SweepResult run_sweeps(AsyncCurrentSource& driver,
                                     const VoltageAxis& x_axis,
                                     const VoltageAxis& y_axis, Pixel anchor_a,
                                     Pixel anchor_b,
                                     const SweepOptions& options = {},
                                     const AcquisitionContext& context = {});

}  // namespace qvg
