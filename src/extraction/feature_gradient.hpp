// The paper's Algorithm 2: the feature gradient.
//
// A charge-state transition line produces a sharp *drop* in sensor current
// when crossed toward increasing voltages (an electron loads and shifts the
// sensor peak). The feature gradient of a pixel sums its current difference
// with the right and upper-right neighbours,
//
//   g(v1, v2) = (c - c_right) + (c - c_upper_right)
//   c            = getCurrent(v1,         v2)
//   c_right      = getCurrent(v1 + delta, v2)
//   c_upper_right= getCurrent(v1 + delta, v2 + delta)
//
// so it is large and positive exactly on the transition lines ("positively
// tilted gradient", Figure 4). delta is the voltage granularity (pixel size).
#pragma once

#include "probe/current_source.hpp"

namespace qvg {

/// Evaluate the feature gradient at gate voltages (v1, v2) = (x, y) with
/// pixel sizes (delta_x, delta_y). Costs up to three probes (shared
/// neighbours hit the ProbeCache when evaluated on a sweep).
[[nodiscard]] double feature_gradient(CurrentSource& source, double v1,
                                      double v2, double delta_x,
                                      double delta_y);

}  // namespace qvg
