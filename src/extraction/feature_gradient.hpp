// The paper's Algorithm 2: the feature gradient.
//
// A charge-state transition line produces a sharp *drop* in sensor current
// when crossed toward increasing voltages (an electron loads and shifts the
// sensor peak). The feature gradient of a pixel sums its current difference
// with the right and upper-right neighbours,
//
//   g(v1, v2) = (c - c_right) + (c - c_upper_right)
//   c            = getCurrent(v1,         v2)
//   c_right      = getCurrent(v1 + delta, v2)
//   c_upper_right= getCurrent(v1 + delta, v2 + delta)
//
// so it is large and positive exactly on the transition lines ("positively
// tilted gradient", Figure 4). delta is the voltage granularity (pixel size).
#pragma once

#include "common/status.hpp"
#include "probe/current_source.hpp"
#include "probe/driver/async_source.hpp"

#include <span>
#include <vector>

namespace qvg {

class AcquisitionContext;

/// Evaluate the feature gradient at gate voltages (v1, v2) = (x, y) with
/// pixel sizes (delta_x, delta_y). Costs up to three probes (shared
/// neighbours hit the ProbeCache when evaluated on a sweep).
[[nodiscard]] double feature_gradient(CurrentSource& source, double v1,
                                      double v2, double delta_x,
                                      double delta_y);

/// Batched Algorithm 2: queue gradient centres with add(), then evaluate()
/// issues all of their probes as ONE get_currents request — in the exact
/// order the scalar feature_gradient loop would issue them, so results (and,
/// through a ProbeCache, the probe log and statistics) are bit-identical to
/// probing point by point. Buffers are reused across evaluate() calls; one
/// instance per sweep keeps the hot loop allocation-free at steady state.
class FeatureGradientBatch {
 public:
  void clear() { centers_.clear(); }
  void add(double v1, double v2) { centers_.push_back({v1, v2}); }
  [[nodiscard]] std::size_t size() const noexcept { return centers_.size(); }

  /// Evaluate every queued centre; returns one gradient per centre, in add()
  /// order. The returned span is valid until the next evaluate() call.
  std::span<const double> evaluate(CurrentSource& source, double delta_x,
                                   double delta_y);

  /// Fallible evaluation: the probe batch goes through probe_with_retry
  /// (transient faults retried per context.retry, drift absorbed — a cached
  /// source invalidates its stale region — and exhaustion escalating to
  /// kProbeHardFault, all recorded to context.faults). On ok() `out` is the
  /// per-centre gradient span, bit-identical to evaluate() on a fault-free
  /// source and valid until the next evaluation; on failure `out` is left
  /// untouched. `stage` names the caller's pipeline stage for the Status.
  [[nodiscard]] Status try_evaluate(CurrentSource& source, double delta_x,
                                    double delta_y,
                                    const AcquisitionContext& context,
                                    const char* stage,
                                    std::span<const double>& out);

  /// Asynchronous evaluation, split for pipelining: submit() posts the
  /// queued centres' probe batch to the driver and returns the completion
  /// handle; once the completion is ok(), reduce() turns the received
  /// currents into the per-centre gradient span (valid until the next
  /// evaluation). Between submit() and the handle's wait() the instance must
  /// not be touched (the driver writes its currents buffer). Through a
  /// SyncSourceAdapter submit()+reduce() is exactly try_evaluate().
  [[nodiscard]] CompletionHandle submit(AsyncCurrentSource& driver,
                                        double delta_x, double delta_y,
                                        const AcquisitionContext& context,
                                        const char* stage);
  [[nodiscard]] std::span<const double> reduce() { return reduce_gradients(); }

 private:
  /// Queue the 3 probes per centre into probes_ (shared by both paths).
  void build_probes(double delta_x, double delta_y);
  /// Reduce currents_ into per-centre gradients (shared by both paths).
  std::span<const double> reduce_gradients();

  std::vector<Point2> centers_;
  std::vector<Point2> probes_;
  std::vector<double> currents_;
  std::vector<double> gradients_;
};

}  // namespace qvg
