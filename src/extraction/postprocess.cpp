#include "extraction/postprocess.hpp"

#include <algorithm>
#include <map>

namespace qvg {

std::vector<Pixel> keep_lowest_per_column(const std::vector<Pixel>& points) {
  std::map<int, Pixel> best;  // x -> lowest point
  for (const Pixel& p : points) {
    auto [it, inserted] = best.try_emplace(p.x, p);
    if (!inserted && p.y < it->second.y) it->second = p;
  }
  std::vector<Pixel> out;
  out.reserve(best.size());
  for (const auto& [x, p] : best) out.push_back(p);
  return out;
}

std::vector<Pixel> keep_leftmost_per_row(const std::vector<Pixel>& points) {
  std::map<int, Pixel> best;  // y -> leftmost point
  for (const Pixel& p : points) {
    auto [it, inserted] = best.try_emplace(p.y, p);
    if (!inserted && p.x < it->second.x) it->second = p;
  }
  std::vector<Pixel> out;
  out.reserve(best.size());
  for (const auto& [y, p] : best) out.push_back(p);
  return out;
}

std::vector<Pixel> postprocess_transition_points(
    const std::vector<Pixel>& points) {
  std::vector<Pixel> merged = keep_lowest_per_column(points);
  const auto second = keep_leftmost_per_row(points);
  merged.insert(merged.end(), second.begin(), second.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

}  // namespace qvg
