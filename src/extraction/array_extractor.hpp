// N-dot array virtualization (paper §2.3): "The virtual gate extraction can
// be extended to an n-dot array by sequentially applying it to every pair of
// nearby plunger gates, and n-1 sequentially executed extraction processes
// are needed." This module walks the nearest-neighbour plunger pairs of a
// simulated linear array, runs the chosen extraction method on each pair,
// and composes the full n x n virtualization matrix.
#pragma once

#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/hough_baseline.hpp"
#include "extraction/success.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace qvg {

enum class ExtractionMethod { kFast, kHoughBaseline };

struct ArrayExtractionOptions {
  ExtractionMethod method = ExtractionMethod::kFast;
  std::size_t pixels_per_axis = 100;
  double dwell_seconds = 0.050;
  std::uint64_t noise_seed = 42;
  /// White-noise sigma added to each pair scan (sensor current units).
  double white_noise_sigma = 0.0;
  /// Run the n-1 pair extractions concurrently on the global ThreadPool.
  /// Each pair owns its simulator and derives its noise seed from its index,
  /// and results are composed in pair order afterwards, so the output is
  /// bit-identical to the serial walk regardless of thread count.
  bool parallel = true;
  FastExtractorOptions fast;
  HoughBaselineOptions baseline;
  VerdictOptions verdict;
};

struct PairExtraction {
  std::size_t pair_index = 0;
  bool success = false;
  std::string failure_reason;
  VirtualGatePair gates;
  Verdict verdict;
  ProbeStats stats;
};

struct ArrayExtractionResult {
  bool success = false;  // every pair succeeded
  std::vector<PairExtraction> pairs;
  /// Composed n x n virtualization matrix (identity entries where a pair
  /// failed).
  Matrix matrix;
  /// Nearest-neighbour reference matrix from the device's lever arms.
  Matrix reference;
  /// Max absolute error over the nearest-neighbour band vs the reference.
  double band_max_error = 0.0;
  ProbeStats total_stats;
};

/// Extract virtual gates for every nearest-neighbour pair of the array.
[[nodiscard]] ArrayExtractionResult extract_array_virtualization(
    const BuiltDevice& device, const ArrayExtractionOptions& options = {});

}  // namespace qvg
