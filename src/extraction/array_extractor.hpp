// N-dot array virtualization (paper §2.3): "The virtual gate extraction can
// be extended to an n-dot array by sequentially applying it to every pair of
// nearby plunger gates, and n-1 sequentially executed extraction processes
// are needed." This module walks the nearest-neighbour plunger pairs of a
// simulated linear array, runs the chosen extraction method on each pair,
// and composes the full n x n virtualization matrix.
#pragma once

#include "common/status.hpp"
#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/hough_baseline.hpp"
#include "extraction/success.hpp"
#include "probe/acquisition_context.hpp"

#include <cstdint>
#include <vector>

namespace qvg {

enum class ExtractionMethod { kFast, kHoughBaseline };

struct ArrayExtractionOptions {
  ExtractionMethod method = ExtractionMethod::kFast;
  std::size_t pixels_per_axis = 100;
  double dwell_seconds = 0.050;
  std::uint64_t noise_seed = 42;
  /// White-noise sigma added to each pair scan (sensor current units).
  double white_noise_sigma = 0.0;
  /// Run the n-1 pair extractions concurrently on the global ThreadPool.
  /// Each pair owns its simulator and derives its noise seed from its index,
  /// and results are composed in pair order afterwards, so the output is
  /// bit-identical to the serial walk regardless of thread count.
  bool parallel = true;
  /// Shard the n-1 pair extractions for parallel execution: pairs are
  /// assigned round-robin (pair p -> shard p % shards), shards run
  /// concurrently on the ThreadPool, and each shard walks its own pairs
  /// serially — every pair still owns its simulator and ProbeCache, so
  /// shards share no mutable state and the hot probe path has no cross-shard
  /// lock contention. 0 = one shard per pair (the pre-shard fan-out).
  /// Pair outputs never depend on the shard plan; only the per-shard stats
  /// grouping does. Bit-identical to the serial walk for every shard count.
  std::size_t shards = 0;
  /// Ground-state search strategy each pair's simulator uses above the
  /// exhaustive dot limit (the > 7-dot regime this walk scales into).
  FrontierStrategy frontier = FrontierStrategy::kAnneal;
  FastExtractorOptions fast;
  HoughBaselineOptions baseline;
  VerdictOptions verdict;
};

struct PairExtraction {
  std::size_t pair_index = 0;
  /// The pair's own extraction status (the method's internal outcome).
  Status status;
  VirtualGatePair gates;
  Verdict verdict;
  ProbeStats stats;
};

/// Deterministic per-shard bookkeeping composed alongside the array result:
/// which pairs the shard ran and their summed ProbeStats. A function of
/// (pair results, shard count) only — independent of scheduling — so
/// engine-batched, parallel, and serial walks report identical shards.
struct ArrayShardStats {
  std::size_t shard_index = 0;
  std::vector<std::size_t> pair_indices;
  /// ProbeStats summed over the shard's pairs in pair order.
  ProbeStats stats;
};

struct ArrayExtractionResult {
  /// ok() when every pair succeeded; kPairFailed otherwise, with the failed
  /// pair count in the detail.
  Status status;
  std::vector<PairExtraction> pairs;
  /// One entry per shard of the executed plan (see
  /// ArrayExtractionOptions::shards).
  std::vector<ArrayShardStats> shards;
  /// Composed n x n virtualization matrix (identity entries where a pair
  /// failed).
  Matrix matrix;
  /// Nearest-neighbour reference matrix from the device's lever arms.
  Matrix reference;
  /// Max absolute error over the nearest-neighbour band vs the reference.
  double band_max_error = 0.0;
  /// Per-pair ProbeStats summed in pair order: unique probes, raw requests,
  /// simulated dwell seconds, and compute seconds across the whole array.
  ProbeStats total_stats;
};

/// Extract virtual gates for every nearest-neighbour pair of the array. The
/// context is shared by every pair: a cancelled or expired job stops each
/// still-running pair at its next batch boundary and the composed result
/// carries the interruption Status.
[[nodiscard]] ArrayExtractionResult extract_array_virtualization(
    const BuiltDevice& device, const ArrayExtractionOptions& options = {},
    const AcquisitionContext& context = {});

/// Run ONE pair extraction of the array walk. Self-contained and
/// deterministic: the pair's simulator is built from `pair_index` (own noise
/// stream seeded opt.noise_seed + pair_index, own probe cache), so calls for
/// different pairs never share mutable state. This is the unit the service
/// layer fans out. The context is checked before the pair starts and
/// threaded through its extraction.
[[nodiscard]] PairExtraction extract_array_pair(
    const BuiltDevice& device, const ArrayExtractionOptions& options,
    std::size_t pair_index, const AcquisitionContext& context = {});

/// The shard plan: pair p runs in shard p % shard_count. shards == 0 or
/// shards > pair_count normalizes to one shard per pair. Round-robin keeps
/// the per-shard cost balanced when extraction cost drifts along the array.
[[nodiscard]] std::vector<std::vector<std::size_t>> plan_array_shards(
    std::size_t pair_count, std::size_t shards);

/// Compose per-pair extractions (in pair order) into the full array result:
/// n x n matrix, reference band, band error, summed ProbeStats, per-shard
/// stats for the given shard count, and overall status. Deterministic given
/// (pairs, shards), so serial, parallel, and engine-batched walks compose
/// bit-identically.
[[nodiscard]] ArrayExtractionResult compose_array_result(
    const BuiltDevice& device, std::vector<PairExtraction> pairs,
    std::size_t shards = 0);

}  // namespace qvg
