// N-dot array virtualization (paper §2.3): "The virtual gate extraction can
// be extended to an n-dot array by sequentially applying it to every pair of
// nearby plunger gates, and n-1 sequentially executed extraction processes
// are needed." This module walks the nearest-neighbour plunger pairs of a
// simulated linear array, runs the chosen extraction method on each pair,
// and composes the full n x n virtualization matrix.
#pragma once

#include "common/status.hpp"
#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/hough_baseline.hpp"
#include "extraction/success.hpp"
#include "probe/acquisition_context.hpp"

#include <cstdint>
#include <vector>

namespace qvg {

enum class ExtractionMethod { kFast, kHoughBaseline };

struct ArrayExtractionOptions {
  ExtractionMethod method = ExtractionMethod::kFast;
  std::size_t pixels_per_axis = 100;
  double dwell_seconds = 0.050;
  std::uint64_t noise_seed = 42;
  /// White-noise sigma added to each pair scan (sensor current units).
  double white_noise_sigma = 0.0;
  /// Run the n-1 pair extractions concurrently on the global ThreadPool.
  /// Each pair owns its simulator and derives its noise seed from its index,
  /// and results are composed in pair order afterwards, so the output is
  /// bit-identical to the serial walk regardless of thread count.
  bool parallel = true;
  FastExtractorOptions fast;
  HoughBaselineOptions baseline;
  VerdictOptions verdict;
};

struct PairExtraction {
  std::size_t pair_index = 0;
  /// The pair's own extraction status (the method's internal outcome).
  Status status;
  VirtualGatePair gates;
  Verdict verdict;
  ProbeStats stats;
};

struct ArrayExtractionResult {
  /// ok() when every pair succeeded; kPairFailed otherwise, with the failed
  /// pair count in the detail.
  Status status;
  std::vector<PairExtraction> pairs;
  /// Composed n x n virtualization matrix (identity entries where a pair
  /// failed).
  Matrix matrix;
  /// Nearest-neighbour reference matrix from the device's lever arms.
  Matrix reference;
  /// Max absolute error over the nearest-neighbour band vs the reference.
  double band_max_error = 0.0;
  /// Per-pair ProbeStats summed in pair order: unique probes, raw requests,
  /// simulated dwell seconds, and compute seconds across the whole array.
  ProbeStats total_stats;
};

/// Extract virtual gates for every nearest-neighbour pair of the array. The
/// context is shared by every pair: a cancelled or expired job stops each
/// still-running pair at its next batch boundary and the composed result
/// carries the interruption Status.
[[nodiscard]] ArrayExtractionResult extract_array_virtualization(
    const BuiltDevice& device, const ArrayExtractionOptions& options = {},
    const AcquisitionContext& context = {});

/// Run ONE pair extraction of the array walk. Self-contained and
/// deterministic: the pair's simulator is built from `pair_index` (own noise
/// stream seeded opt.noise_seed + pair_index, own probe cache), so calls for
/// different pairs never share mutable state. This is the unit the service
/// layer fans out. The context is checked before the pair starts and
/// threaded through its extraction.
[[nodiscard]] PairExtraction extract_array_pair(
    const BuiltDevice& device, const ArrayExtractionOptions& options,
    std::size_t pair_index, const AcquisitionContext& context = {});

/// Compose per-pair extractions (in pair order) into the full array result:
/// n x n matrix, reference band, band error, summed ProbeStats, and overall
/// status. Deterministic given `pairs`, so serial, parallel, and
/// engine-batched walks compose bit-identically.
[[nodiscard]] ArrayExtractionResult compose_array_result(
    const BuiltDevice& device, std::vector<PairExtraction> pairs);

}  // namespace qvg
