// The conventional virtual gate extraction baseline (paper §3, §5.1):
// acquire the *full* charge stability diagram (every pixel costs a probe +
// dwell), run Canny edge detection, then a Hough transform, classify the
// detected lines into the steep and shallow transition-line families, and
// build the virtualization matrix from the strongest line of each family.
#pragma once

#include "common/error.hpp"
#include "common/status.hpp"
#include "extraction/fast_extractor.hpp"  // ProbeStats
#include "extraction/virtualization.hpp"
#include "grid/csd.hpp"
#include "imgproc/canny.hpp"
#include "imgproc/hough.hpp"
#include "probe/acquisition_context.hpp"
#include "probe/current_source.hpp"

#include <vector>

namespace qvg {

struct HoughBaselineOptions {
  /// Fixed absolute Canny thresholds in normalized-image units, mirroring
  /// common OpenCV practice (and the paper's baseline): tuned once for the
  /// contrast of a typical charge-sensed CSD rather than adapted per image.
  /// This is what makes the baseline blind to faint transition lines
  /// (benchmark CSD 7) even though the diagram is otherwise clean.
  CannyOptions canny{.low_threshold = 0.25, .high_threshold = 0.45};
  HoughOptions hough;
  /// Pixel-space slope separating the steep from the shallow family.
  double steep_threshold = -1.0;
  /// Reject near-horizontal/vertical artefacts: lines need a pixel-space
  /// slope in [-max_abs_slope, -1/max_abs_slope] to be counted.
  double max_abs_slope = 30.0;
  /// Minimum Hough votes for a line to count, as a fraction of the image
  /// diagonal (lines supported by only a few edge pixels are noise).
  double min_votes_diag_fraction = 0.12;
  /// After peak picking, refine each line's slope by least-squares fitting
  /// the edge pixels within this distance (pixels); 0 disables and keeps the
  /// quantized accumulator slope.
  double refine_tolerance_px = 2.0;
};

struct HoughBaselineResult {
  /// ok() when both line families were found and virtualized.
  Status status;

  Csd acquired;            // the full CSD the baseline measured
  long edge_pixels = 0;    // Canny output size
  std::vector<HoughLine> lines;  // all peak lines considered
  HoughLine steep_line;
  HoughLine shallow_line;

  double slope_steep = 0.0;    // voltage units
  double slope_shallow = 0.0;  // voltage units
  VirtualGatePair virtual_gates;

  ProbeStats stats;
};

/// Run the baseline over the scan window given by the axes. The acquisition
/// context is checked between the raster's row batches and between the
/// acquisition and image-processing stages; a cancelled or expired job
/// returns the typed interruption Status (stage "raster" or "hough") with
/// the ProbeStats of the partial acquisition. An uninterrupted run is
/// bit-identical whether or not a context is attached.
[[nodiscard]] HoughBaselineResult run_hough_baseline(
    CurrentSource& source, const VoltageAxis& x_axis, const VoltageAxis& y_axis,
    const HoughBaselineOptions& options = {},
    const AcquisitionContext& context = {});

/// Run only the image-processing stage on an already-acquired CSD (used by
/// tests and by replay benches that share one acquisition).
[[nodiscard]] HoughBaselineResult analyze_csd_with_hough(
    const Csd& csd, const HoughBaselineOptions& options = {});

}  // namespace qvg
