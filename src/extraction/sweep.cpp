#include "extraction/sweep.hpp"

#include "common/assert.hpp"
#include "extraction/feature_gradient.hpp"
#include "probe/driver/instrument_driver.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace qvg {

std::vector<Pixel> SweepResult::all_pixels() const {
  std::vector<Pixel> out;
  out.reserve(row_points.size() + col_points.size());
  for (const auto& p : row_points) out.push_back(p.pixel);
  for (const auto& p : col_points) out.push_back(p.pixel);
  return out;
}

namespace {

/// Integer pixel range [lo, hi] covered by a continuous span, using pixel
/// centres for the inside test (paper §4.3.2) and clamping to the window.
std::pair<int, int> pixel_range(double span_lo, double span_hi, int window_hi) {
  const int lo = std::max(0, static_cast<int>(std::ceil(span_lo - 1e-9)));
  const int hi = std::min(window_hi, static_cast<int>(std::floor(span_hi + 1e-9)));
  return {lo, hi};
}

}  // namespace

SweepResult run_sweeps(AsyncCurrentSource& driver, const VoltageAxis& x_axis,
                       const VoltageAxis& y_axis, Pixel anchor_a,
                       Pixel anchor_b, const SweepOptions& opt,
                       const AcquisitionContext& context) {
  QVG_EXPECTS(anchor_a.x < anchor_b.x);
  QVG_EXPECTS(anchor_a.y > anchor_b.y);
  const int w = static_cast<int>(x_axis.count());
  const int h = static_cast<int>(y_axis.count());
  QVG_EXPECTS(anchor_b.x < w && anchor_a.y < h);
  QVG_EXPECTS(anchor_a.x >= 0 && anchor_b.y >= 0);

  // One batch per segment: every pixel's Algorithm-2 probes go out as a
  // single submission (same probe order as the scalar loop, so a wrapped
  // ProbeCache sees identical traffic and backends batch the rest). Each
  // segment's argmax moves the anchor shaping the next segment, so segments
  // are submit + wait — serial through the driver at any depth.
  FeatureGradientBatch batch;
  SweepResult result;

  // Interruption check before each segment batch: a stopped sweep keeps the
  // points found so far and reports the typed Status. `last_probes` mirrors
  // source.probe_count() at the equivalent synchronous boundary (the ring is
  // idle between segments, so the completion-carried count is exact).
  long last_probes = driver.probes_completed();
  auto interrupted = [&] {
    result.status = context.check("sweeps", last_probes);
    return !result.status.ok();
  };

  // Submit + wait one segment batch; on ok, `gradients` holds the reduced
  // per-pixel gradients.
  const auto evaluate_segment = [&](std::span<const double>& gradients) {
    CompletionHandle handle = batch.submit(driver, x_axis.step(),
                                           y_axis.step(), context, "sweeps");
    const BatchCompletion& completion = handle.wait();
    if (!completion.outcome.ok()) {
      result.status = completion.outcome.status;
      return false;
    }
    last_probes = completion.probes_after;
    gradients = batch.reduce();
    return true;
  };

  // --- Row-major sweep (bottom -> top), moving anchor B. -----------------
  if (opt.run_row_sweep) {
    const int slack = opt.triangle_slack_pixels;
    TriangleRegion triangle(anchor_a.center(), anchor_b.center());
    for (int row = anchor_b.y + 1; row <= anchor_a.y - 1; ++row) {
      const auto span = triangle.row_span(static_cast<double>(row));
      if (!span) continue;
      if (interrupted()) return result;
      auto [x_lo, x_hi] =
          pixel_range(span->first - slack, span->second + slack, w - 1);
      // Keep the moving anchor strictly right of the fixed anchor A.
      x_lo = std::max(x_lo, anchor_a.x + 1);
      if (x_lo > x_hi) continue;
      if (opt.max_segment_pixels > 0) {
        const auto limit = static_cast<int>(opt.max_segment_pixels);
        if (x_hi - x_lo + 1 > limit) x_lo = x_hi - limit + 1;
      }

      batch.clear();
      for (int x = x_lo; x <= x_hi; ++x)
        batch.add(x_axis.voltage(x), y_axis.voltage(row));
      std::span<const double> gradients;
      if (!evaluate_segment(gradients)) return result;
      SweepPoint best{{x_lo, row}, -1e300};
      for (int x = x_lo; x <= x_hi; ++x) {
        const double g = gradients[static_cast<std::size_t>(x - x_lo)];
        if (g > best.gradient) best = {{x, row}, g};
      }
      result.row_points.push_back(best);
      int anchor_x = best.pixel.x;
      if (opt.max_anchor_step > 0) {
        const int prev_x = static_cast<int>(triangle.anchor_b().x);
        anchor_x = std::max(anchor_x, prev_x - opt.max_anchor_step);
      }
      triangle.move_anchor_b(
          {static_cast<double>(anchor_x), static_cast<double>(row)});
    }
  }

  // --- Column-major sweep (left -> right), moving anchor A. --------------
  if (opt.run_col_sweep) {
    const int slack = opt.triangle_slack_pixels;
    TriangleRegion triangle(anchor_a.center(), anchor_b.center());
    for (int col = anchor_a.x + 1; col <= anchor_b.x - 1; ++col) {
      const auto span = triangle.col_span(static_cast<double>(col));
      if (!span) continue;
      if (interrupted()) return result;
      auto [y_lo, y_hi] =
          pixel_range(span->first - slack, span->second + slack, h - 1);
      // Keep the moving anchor strictly above the fixed anchor B.
      y_lo = std::max(y_lo, anchor_b.y + 1);
      if (y_lo > y_hi) continue;
      if (opt.max_segment_pixels > 0) {
        const auto limit = static_cast<int>(opt.max_segment_pixels);
        if (y_hi - y_lo + 1 > limit) y_lo = y_hi - limit + 1;
      }

      batch.clear();
      for (int y = y_lo; y <= y_hi; ++y)
        batch.add(x_axis.voltage(col), y_axis.voltage(y));
      std::span<const double> gradients;
      if (!evaluate_segment(gradients)) return result;
      SweepPoint best{{col, y_lo}, -1e300};
      for (int y = y_lo; y <= y_hi; ++y) {
        const double g = gradients[static_cast<std::size_t>(y - y_lo)];
        if (g > best.gradient) best = {{col, y}, g};
      }
      result.col_points.push_back(best);
      int anchor_y = best.pixel.y;
      if (opt.max_anchor_step > 0) {
        const int prev_y = static_cast<int>(triangle.anchor_a().y);
        anchor_y = std::max(anchor_y, prev_y - opt.max_anchor_step);
      }
      triangle.move_anchor_a(
          {static_cast<double>(col), static_cast<double>(anchor_y)});
    }
  }

  return result;
}

SweepResult run_sweeps(CurrentSource& source, const VoltageAxis& x_axis,
                       const VoltageAxis& y_axis, Pixel anchor_a,
                       Pixel anchor_b, const SweepOptions& opt,
                       const AcquisitionContext& context) {
  if (context.transport.enabled()) {
    InstrumentDriver driver(source, context.transport, context.faults);
    return run_sweeps(driver, x_axis, y_axis, anchor_a, anchor_b, opt,
                      context);
  }
  SyncSourceAdapter adapter(source);
  return run_sweeps(adapter, x_axis, y_axis, anchor_a, anchor_b, opt, context);
}

}  // namespace qvg
