#include "extraction/fast_extractor.hpp"

#include "common/stopwatch.hpp"
#include "extraction/postprocess.hpp"
#include "probe/driver/instrument_driver.hpp"
#include "probe/probe_cache.hpp"

#include <algorithm>
#include <optional>

namespace qvg {

FastExtractionResult run_fast_extraction(CurrentSource& source,
                                         const VoltageAxis& x_axis,
                                         const VoltageAxis& y_axis,
                                         const FastExtractorOptions& opt,
                                         const AcquisitionContext& context) {
  FastExtractionResult result;
  Stopwatch wall;
  const double sim_start = source.clock().elapsed_seconds();

  ProbeCache cache(source, std::min(x_axis.step(), y_axis.step()));
  // Anchor scans probe O(width + height) pixels and the triangle sweeps a
  // band around each transition line; a handful of rows' worth of capacity
  // covers the typical 4-17% unique-probe fraction without rehashing.
  cache.reserve((x_axis.count() + y_axis.count()) * 8);

  // One acquisition lane for the whole job, wrapped around the cache: an
  // InstrumentDriver when the job models a transport (one driver thread per
  // job, its stats flushed into context.faults when the lane is destroyed),
  // the SyncSourceAdapter — call-for-call the pre-driver path — otherwise.
  // Every stage drains the lane before returning, so the cache statistics
  // finish() reads are quiescent.
  std::optional<InstrumentDriver> driver;
  std::optional<SyncSourceAdapter> adapter;
  AsyncCurrentSource* lane = nullptr;
  if (context.transport.enabled())
    lane = &driver.emplace(cache, context.transport, context.faults);
  else
    lane = &adapter.emplace(cache);

  auto finish = [&](Status status) {
    result.status = std::move(status);
    result.stats.unique_probes = cache.unique_probe_count();
    result.stats.total_requests = cache.probe_count();
    result.stats.simulated_seconds =
        source.clock().elapsed_seconds() - sim_start;
    result.stats.compute_seconds = wall.elapsed_seconds();
    result.probe_log = cache.probe_log();
    return result;
  };
  // Interruption check between stages; the budget counts requests on the
  // cache (the interface the pipeline drives).
  auto interrupt_at = [&](const char* stage) {
    return context.check(stage, cache.probe_count());
  };

  // Stage 1: anchor preprocessing (§4.4). The context threads through and
  // is checked before every anchor probe batch (including once on entry),
  // so a pre-cancelled job stops with zero probes.
  auto anchors =
      find_anchor_points(*lane, x_axis, y_axis, opt.anchors, context);
  if (!anchors) return finish(anchors.status());
  result.anchors = std::move(anchors).value();

  // Stage 2: triangle sweeps (§4.3.2, Algorithm 3), context checked between
  // segment batches.
  if (Status s = interrupt_at("sweeps"); !s.ok()) return finish(std::move(s));
  SweepOptions sweep_opt = opt.sweep;
  sweep_opt.run_row_sweep = opt.enable_row_sweep;
  sweep_opt.run_col_sweep = opt.enable_col_sweep;
  result.sweeps = run_sweeps(*lane, x_axis, y_axis, result.anchors.anchor_a,
                             result.anchors.anchor_b, sweep_opt, context);
  if (!result.sweeps.status.ok()) return finish(result.sweeps.status);
  std::vector<Pixel> raw_points;
  if (opt.enable_row_sweep)
    for (const auto& p : result.sweeps.row_points) raw_points.push_back(p.pixel);
  if (opt.enable_col_sweep)
    for (const auto& p : result.sweeps.col_points) raw_points.push_back(p.pixel);
  if (raw_points.size() < 3)
    return finish(Status::failure(ErrorCode::kInsufficientPoints, "sweeps",
                                  "located fewer than 3 transition points"));

  // Stage 3: post-processing filter (Algorithm 3, PostProcess). Probing is
  // done; the remaining stages are compute-only, with one cancel/deadline
  // check before the fit so an expired job reports "fit" as its
  // interruption point. The probe budget is deliberately NOT consulted
  // here: it caps what the job may *issue*, and a run whose final probe
  // batch landed on (or crossed) the budget still gets its fit.
  if (Status s = context.check("fit"); !s.ok()) return finish(std::move(s));
  result.filtered_points = opt.enable_postprocess
                               ? postprocess_transition_points(raw_points)
                               : raw_points;

  // Stage 4: 2-piecewise slope fit (§4.3.3).
  auto fit = fit_piecewise_linear(result.filtered_points,
                                  result.anchors.anchor_a,
                                  result.anchors.anchor_b, opt.fit);
  if (!fit)
    return finish(Status::failure(ErrorCode::kFitFailed, "fit", fit.reason()));
  result.fit = std::move(fit).value();

  // Convert pixel-space slopes and intersection to voltage units.
  const double unit_ratio = y_axis.step() / x_axis.step();
  result.slope_steep = result.fit.slope_steep * unit_ratio;
  result.slope_shallow = result.fit.slope_shallow * unit_ratio;
  result.intersection_voltage = {x_axis.voltage(result.fit.intersection.x),
                                 y_axis.voltage(result.fit.intersection.y)};

  // Stage 5: virtualization matrix (§2.3).
  auto pair =
      virtualization_from_slopes(result.slope_steep, result.slope_shallow);
  if (!pair)
    return finish(Status::failure(ErrorCode::kDegenerateVirtualization,
                                  "virtualization", pair.reason()));
  result.virtual_gates = *pair;

  return finish(Status{});
}

}  // namespace qvg
