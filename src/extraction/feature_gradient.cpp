#include "extraction/feature_gradient.hpp"

#include "common/assert.hpp"

namespace qvg {

double feature_gradient(CurrentSource& source, double v1, double v2,
                        double delta_x, double delta_y) {
  QVG_EXPECTS(delta_x > 0.0 && delta_y > 0.0);
  const double c = source.get_current(v1, v2);
  const double c_right = source.get_current(v1 + delta_x, v2);
  const double c_upper_right = source.get_current(v1 + delta_x, v2 + delta_y);
  return (c - c_right) + (c - c_upper_right);
}

}  // namespace qvg
