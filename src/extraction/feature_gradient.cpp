#include "extraction/feature_gradient.hpp"

#include "common/assert.hpp"
#include "probe/acquisition_context.hpp"
#include "probe/retry_policy.hpp"

namespace qvg {

double feature_gradient(CurrentSource& source, double v1, double v2,
                        double delta_x, double delta_y) {
  QVG_EXPECTS(delta_x > 0.0 && delta_y > 0.0);
  const double c = source.get_current(v1, v2);
  const double c_right = source.get_current(v1 + delta_x, v2);
  const double c_upper_right = source.get_current(v1 + delta_x, v2 + delta_y);
  return (c - c_right) + (c - c_upper_right);
}

void FeatureGradientBatch::build_probes(double delta_x, double delta_y) {
  QVG_EXPECTS(delta_x > 0.0 && delta_y > 0.0);
  probes_.clear();
  probes_.reserve(centers_.size() * 3);
  for (const Point2& c : centers_) {
    probes_.push_back(c);
    probes_.push_back({c.x + delta_x, c.y});
    probes_.push_back({c.x + delta_x, c.y + delta_y});
  }
  currents_.resize(probes_.size());
}

std::span<const double> FeatureGradientBatch::reduce_gradients() {
  gradients_.resize(centers_.size());
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const double c = currents_[3 * i];
    const double c_right = currents_[3 * i + 1];
    const double c_upper_right = currents_[3 * i + 2];
    gradients_[i] = (c - c_right) + (c - c_upper_right);
  }
  return gradients_;
}

std::span<const double> FeatureGradientBatch::evaluate(CurrentSource& source,
                                                       double delta_x,
                                                       double delta_y) {
  build_probes(delta_x, delta_y);
  source.get_currents(probes_, currents_);
  return reduce_gradients();
}

CompletionHandle FeatureGradientBatch::submit(AsyncCurrentSource& driver,
                                              double delta_x, double delta_y,
                                              const AcquisitionContext& context,
                                              const char* stage) {
  build_probes(delta_x, delta_y);
  return driver.submit(probes_, currents_, context, stage);
}

Status FeatureGradientBatch::try_evaluate(CurrentSource& source,
                                          double delta_x, double delta_y,
                                          const AcquisitionContext& context,
                                          const char* stage,
                                          std::span<const double>& out) {
  build_probes(delta_x, delta_y);
  const ProbeOutcome outcome =
      probe_with_retry(source, probes_, currents_, context, stage);
  if (!outcome.ok()) return outcome.status;
  out = reduce_gradients();
  return {};
}

}  // namespace qvg
