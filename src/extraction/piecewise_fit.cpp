#include "extraction/piecewise_fit.hpp"

#include "common/assert.hpp"
#include "linalg/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

namespace qvg {

namespace {

double segment_distance(Point2 p, Point2 a, Point2 b) {
  const Point2 ab = b - a;
  const double len2 = ab.x * ab.x + ab.y * ab.y;
  if (len2 < 1e-300) return distance(p, a);
  double t = ((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return distance(p, {a.x + t * ab.x, a.y + t * ab.y});
}

}  // namespace

double distance_to_path(Point2 p, Point2 a, Point2 vertex, Point2 b) {
  return std::min(segment_distance(p, a, vertex), segment_distance(p, vertex, b));
}

Expected<PiecewiseFit> fit_piecewise_linear(const std::vector<Pixel>& points,
                                            Pixel anchor_a, Pixel anchor_b,
                                            const PiecewiseFitOptions& opt) {
  if (points.size() < 3)
    return Expected<PiecewiseFit>::failure(
        "piecewise fit needs at least 3 transition points");
  QVG_EXPECTS(anchor_a.x < anchor_b.x);
  QVG_EXPECTS(anchor_a.y > anchor_b.y);

  const Point2 a = anchor_a.center();
  const Point2 b = anchor_b.center();

  // Penalized objective: sum of squared residuals, with a quadratic penalty
  // that keeps the intersection strictly inside the anchor box
  // (a.x < px < b.x, b.y < py < a.y).
  auto objective = [&](const std::vector<double>& params) {
    const Point2 vertex{params[0], params[1]};
    double penalty = 0.0;
    auto violation = [](double v) { return v > 0.0 ? v * v : 0.0; };
    penalty += violation(a.x + 0.5 - vertex.x);
    penalty += violation(vertex.x - (b.x - 0.5));
    penalty += violation(b.y + 0.5 - vertex.y);
    penalty += violation(vertex.y - (a.y - 0.5));
    const double scale =
        static_cast<double>(points.size()) * 100.0;  // dominate residuals

    // Huber loss: quadratic within delta, linear beyond.
    const double delta = opt.huber_delta_px;
    auto loss = [delta](double r) {
      const double ar = std::abs(r);
      if (delta <= 0.0 || ar <= delta) return r * r;
      return 2.0 * delta * ar - delta * delta;
    };

    double ss = 0.0;
    if (opt.residual == FitResidual::kOrthogonal) {
      for (const Pixel& p : points) {
        ss += loss(distance_to_path(p.center(), a, vertex, b));
      }
    } else {
      // Vertical residual against the piecewise function y(x). The shallow
      // branch runs from A to the vertex, the steep branch from the vertex
      // to B.
      const double eps = 1e-9;
      const double m1 = (vertex.y - a.y) / std::max(vertex.x - a.x, eps);
      const double m2 = (b.y - vertex.y) / std::max(b.x - vertex.x, eps);
      for (const Pixel& p : points) {
        const Point2 q = p.center();
        const double predicted = q.x <= vertex.x
                                     ? a.y + m1 * (q.x - a.x)
                                     : vertex.y + m2 * (q.x - vertex.x);
        ss += loss(q.y - predicted);
      }
    }
    return ss + scale * penalty;
  };

  // Initial guess: inset from the right-angle vertex (b.x, a.y) toward the
  // triangle interior.
  const double inset = opt.initial_inset;
  std::vector<double> x0{b.x - inset * (b.x - a.x), a.y - inset * (a.y - b.y)};

  NelderMeadOptions nm;
  nm.max_iterations = opt.max_iterations;
  nm.f_tolerance = 1e-12;
  nm.x_tolerance = 1e-9;
  const auto solution = minimize_nelder_mead(objective, x0, nm);

  PiecewiseFit fit;
  fit.intersection = {solution.x[0], solution.x[1]};
  fit.iterations = solution.iterations;

  const double dx_shallow = fit.intersection.x - a.x;
  const double dx_steep = b.x - fit.intersection.x;
  if (dx_shallow < 0.25 || dx_steep < 0.25)
    return Expected<PiecewiseFit>::failure(
        "fitted intersection collapsed onto an anchor");

  fit.slope_shallow = (fit.intersection.y - a.y) / dx_shallow;
  fit.slope_steep = (b.y - fit.intersection.y) / dx_steep;

  if (!(fit.slope_shallow < 0.0) || !(fit.slope_steep < 0.0))
    return Expected<PiecewiseFit>::failure(
        "fitted transition lines must both have negative slope");
  if (!(fit.slope_steep < fit.slope_shallow))
    return Expected<PiecewiseFit>::failure(
        "steep/shallow slope ordering violated by the fit");

  double ss = 0.0;
  for (const Pixel& p : points) {
    const double d = distance_to_path(p.center(), a, fit.intersection, b);
    ss += d * d;
  }
  fit.rms_residual = std::sqrt(ss / static_cast<double>(points.size()));
  return fit;
}

}  // namespace qvg
