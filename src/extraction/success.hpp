// Automated success verdicts.
//
// The paper judged success by manually inspecting the affine-transformed
// diagram (§5.1). With the simulator's analytic ground truth available we
// replace that with an objective test applied identically to both methods:
// extraction succeeds when both compensation coefficients are within a
// relative tolerance of the ground truth and the fitted geometry is sane.
#pragma once

#include "extraction/virtualization.hpp"
#include "grid/csd.hpp"

#include <string>

namespace qvg {

struct VerdictOptions {
  /// Maximum relative error allowed on each compensation coefficient.
  double alpha_tolerance = 0.25;
  /// Minimum acceptable angle (degrees) between the virtualized lines when
  /// mapping the *true* slopes through the extracted matrix (90 = perfect).
  double min_virtualized_angle_deg = 75.0;
};

struct Verdict {
  bool success = false;
  std::string reason;
  double alpha12_rel_error = 0.0;
  double alpha21_rel_error = 0.0;
  /// Angle between the true transition lines after applying the extracted
  /// virtualization matrix.
  double virtualized_angle_deg = 0.0;

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

/// Judge an extracted pair against the ground truth. `extraction_succeeded`
/// is the method's own internal status (a method that failed to produce a
/// matrix fails the verdict outright).
[[nodiscard]] Verdict judge_extraction(bool extraction_succeeded,
                                       const VirtualGatePair& extracted,
                                       const TransitionTruth& truth,
                                       const VerdictOptions& options = {});

}  // namespace qvg
