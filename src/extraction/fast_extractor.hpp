// The paper's fast virtual gate extraction pipeline (§4):
//   anchor preprocessing -> critical-region triangle sweeps ->
//   post-processing filter -> 2-piecewise slope fit -> virtualization matrix.
//
// The extractor talks to the device only through CurrentSource (Algorithm 1)
// and wraps it in a ProbeCache, so "points probed" counts unique voltage
// configurations exactly as the paper's Table 1 does.
#pragma once

#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/status.hpp"
#include "extraction/anchors.hpp"
#include "extraction/piecewise_fit.hpp"
#include "extraction/sweep.hpp"
#include "extraction/virtualization.hpp"
#include "grid/axis.hpp"
#include "probe/acquisition_context.hpp"
#include "probe/current_source.hpp"

#include <vector>

namespace qvg {

struct FastExtractorOptions {
  AnchorOptions anchors;
  SweepOptions sweep;
  PiecewiseFitOptions fit;
  /// Run the row-major / column-major sweeps (ablation knobs; the paper
  /// uses both).
  bool enable_row_sweep = true;
  bool enable_col_sweep = true;
  /// Apply the post-processing filter (ablation knob; the paper applies it).
  bool enable_postprocess = true;
};

struct ProbeStats {
  long unique_probes = 0;   // distinct voltage configurations (Table 1)
  long total_requests = 0;  // including cache hits
  double simulated_seconds = 0.0;  // dwell-dominated experiment time
  double compute_seconds = 0.0;    // algorithm wall-clock time
  [[nodiscard]] double total_seconds() const {
    return simulated_seconds + compute_seconds;
  }

  friend bool operator==(const ProbeStats&, const ProbeStats&) = default;
};

struct FastExtractionResult {
  /// ok() when the pipeline ran to completion; otherwise the typed failure
  /// (code + stage + detail) of the stage that stopped it.
  Status status;

  // Stage outputs (valid as far as the pipeline got).
  AnchorResult anchors;
  SweepResult sweeps;
  std::vector<Pixel> filtered_points;
  PiecewiseFit fit;  // pixel coordinates

  // Final results, voltage units.
  double slope_steep = 0.0;
  double slope_shallow = 0.0;
  Point2 intersection_voltage{};
  VirtualGatePair virtual_gates;

  ProbeStats stats;
  /// Unique probed voltage configurations, in probe order (Figure 7).
  std::vector<Point2> probe_log;
};

/// Run the full fast extraction over the scan window given by the axes. The
/// acquisition context is checked between pipeline stages and between the
/// probe batches inside anchors and sweeps; a cancelled or expired job stops
/// at the next batch boundary and returns the typed interruption Status
/// (kCancelled / kDeadlineExceeded / kBudgetExhausted) with the ProbeStats
/// and probe log of the partial run. An uninterrupted run is bit-identical
/// whether or not a context is attached.
[[nodiscard]] FastExtractionResult run_fast_extraction(
    CurrentSource& source, const VoltageAxis& x_axis, const VoltageAxis& y_axis,
    const FastExtractorOptions& options = {},
    const AcquisitionContext& context = {});

}  // namespace qvg
