// Virtualization matrices (paper §2.3).
//
// For a dot pair scanned as (x = VP1, y = VP2) with measured transition-line
// slopes m_steep ((0,0)->(1,0)) and m_shallow ((0,0)->(0,1)), the
// compensation coefficients are
//
//   a12 = -1 / m_steep      (effect of VP2 on dot 1)
//   a21 = -m_shallow        (effect of VP1 on dot 2)
//
// and the virtual gates are [V'P1; V'P2] = [[1, a12], [a21, 1]] [VP1; VP2].
// This matrix equals D^-1 A of the underlying lever-arm matrix, i.e. it
// orthogonalizes the dot potentials exactly (DESIGN.md §2 notes the axis
// convention relative to the paper's figures).
#pragma once

#include "common/error.hpp"
#include "grid/csd.hpp"
#include "linalg/matrix.hpp"

#include <vector>

namespace qvg {

struct VirtualGatePair {
  double alpha12 = 0.0;
  double alpha21 = 0.0;

  /// The 2x2 virtualization matrix [[1, a12], [a21, 1]].
  [[nodiscard]] Matrix matrix() const;

  friend bool operator==(const VirtualGatePair&, const VirtualGatePair&) =
      default;
};

/// Build the pair from measured slopes (both must be negative, with
/// m_steep < m_shallow). Fails otherwise.
[[nodiscard]] Expected<VirtualGatePair> virtualization_from_slopes(
    double slope_steep, double slope_shallow);

/// Slope of a line after mapping voltage space through the virtualization
/// matrix (directions transform as d' = M d).
[[nodiscard]] double transform_slope(const Matrix& m, double slope);

/// Angle (degrees) between the two transition lines after virtualization;
/// 90 means perfect orthogonal control.
[[nodiscard]] double virtualized_angle_deg(const VirtualGatePair& pair,
                                           double slope_steep,
                                           double slope_shallow);

/// Resample a CSD into virtual-gate coordinates (the paper's Figure 3
/// right panel): output pixel (V'1, V'2) takes the bilinear sample of the
/// input at (V1, V2) = M^-1 (V'1, V'2), clamped at the window border.
[[nodiscard]] Csd warp_to_virtual(const Csd& csd, const VirtualGatePair& pair);

/// Compose an n x n virtualization matrix for a linear array from the n-1
/// nearest-neighbour pair extractions (paper §2.3: "n-1 sequentially
/// executed extraction processes"). Couplings beyond nearest neighbours are
/// not observable pairwise and are left at zero.
[[nodiscard]] Matrix compose_array_virtualization(
    const std::vector<VirtualGatePair>& pairs);

}  // namespace qvg
