#include "extraction/array_extractor.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <utility>

namespace qvg {

// KEEP IN SYNC with ExtractionEngine::run_array's request builder
// (service/extraction_engine.cpp), which mirrors this construction as a
// DeviceBackend; the engine==direct equivalence test relies on it.
PairExtraction extract_array_pair(const BuiltDevice& device,
                                  const ArrayExtractionOptions& opt,
                                  std::size_t pair_index,
                                  const AcquisitionContext& context) {
  PairExtraction pair;
  pair.pair_index = pair_index;
  // Checked before the pair starts: a job cancelled while earlier pairs ran
  // skips this one outright (zero probes) with the typed Status.
  if (Status interrupt = context.check("array"); !interrupt.ok()) {
    pair.status = std::move(interrupt);
    return pair;
  }

  DeviceSimulator sim = make_pair_simulator(
      device, pair_index, opt.noise_seed + pair_index, opt.dwell_seconds);
  {
    // Frontier strategy only; the simulator keeps its own seed, derived from
    // noise_seed + pair_index, so the stochastic search replays with the
    // request.
    ChargeSolverOptions solver = sim.solver_options();
    solver.frontier.strategy = opt.frontier;
    sim.set_solver_options(solver);
  }
  if (opt.white_noise_sigma > 0.0)
    sim.add_noise(std::make_unique<WhiteNoise>(opt.white_noise_sigma));
  const VoltageAxis axis = scan_axis(device, opt.pixels_per_axis);

  if (opt.method == ExtractionMethod::kFast) {
    const auto extraction =
        run_fast_extraction(sim, axis, axis, opt.fast, context);
    pair.status = extraction.status;
    pair.gates = extraction.virtual_gates;
    pair.stats = extraction.stats;
  } else {
    const auto extraction =
        run_hough_baseline(sim, axis, axis, opt.baseline, context);
    pair.status = extraction.status;
    pair.gates = extraction.virtual_gates;
    pair.stats = extraction.stats;
  }
  pair.verdict = judge_extraction(pair.status.ok(), pair.gates, sim.truth(),
                                  opt.verdict);
  return pair;
}

std::vector<std::vector<std::size_t>> plan_array_shards(std::size_t pair_count,
                                                        std::size_t shards) {
  if (shards == 0 || shards > pair_count) shards = pair_count;
  std::vector<std::vector<std::size_t>> plan(shards);
  for (std::size_t p = 0; p < pair_count; ++p)
    plan[p % shards].push_back(p);
  return plan;
}

ArrayExtractionResult compose_array_result(const BuiltDevice& device,
                                           std::vector<PairExtraction> pairs,
                                           std::size_t shards) {
  const std::size_t n = device.model.num_dots();
  QVG_EXPECTS(n >= 2);
  QVG_EXPECTS(pairs.size() == n - 1);

  ArrayExtractionResult result;
  result.pairs = std::move(pairs);
  result.matrix = Matrix::identity(n);

  // Per-shard bookkeeping from the same deterministic plan the walk ran.
  const auto plan = plan_array_shards(result.pairs.size(), shards);
  result.shards.resize(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    ArrayShardStats& shard = result.shards[s];
    shard.shard_index = s;
    shard.pair_indices = plan[s];
    for (const std::size_t p : plan[s]) {
      const ProbeStats& stats = result.pairs[p].stats;
      shard.stats.unique_probes += stats.unique_probes;
      shard.stats.total_requests += stats.total_requests;
      shard.stats.simulated_seconds += stats.simulated_seconds;
      shard.stats.compute_seconds += stats.compute_seconds;
    }
  }

  // Reference: nearest-neighbour band of the exact compensation matrix.
  result.reference = device.model.ideal_virtualization();

  // Compose the matrix and totals in pair order (deterministic regardless of
  // how the pair extractions were scheduled).
  std::size_t failed = 0;
  for (const auto& pair : result.pairs) {
    result.total_stats.unique_probes += pair.stats.unique_probes;
    result.total_stats.total_requests += pair.stats.total_requests;
    result.total_stats.simulated_seconds += pair.stats.simulated_seconds;
    result.total_stats.compute_seconds += pair.stats.compute_seconds;

    if (pair.status.ok()) {
      result.matrix(pair.pair_index, pair.pair_index + 1) = pair.gates.alpha12;
      result.matrix(pair.pair_index + 1, pair.pair_index) = pair.gates.alpha21;
    } else {
      ++failed;
    }
  }

  // Band error vs the reference compensation matrix.
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    worst = std::max(worst, std::abs(result.matrix(i, i + 1) -
                                     result.reference(i, i + 1)));
    worst = std::max(worst, std::abs(result.matrix(i + 1, i) -
                                     result.reference(i + 1, i)));
  }
  result.band_max_error = worst;
  // An interrupted pair dominates the composed status: the array job itself
  // was cancelled / expired, which is not an ordinary pair failure.
  for (const auto& pair : result.pairs) {
    if (pair.status.code() == ErrorCode::kCancelled ||
        pair.status.code() == ErrorCode::kDeadlineExceeded ||
        pair.status.code() == ErrorCode::kBudgetExhausted) {
      result.status = Status::failure(pair.status.code(), "array",
                                      "interrupted at pair " +
                                          std::to_string(pair.pair_index) +
                                          " (" + pair.status.message() + ")");
      return result;
    }
  }
  if (failed > 0) {
    result.status = Status::failure(
        ErrorCode::kPairFailed, "array",
        std::to_string(failed) + " of " + std::to_string(n - 1) +
            " pair extractions failed");
  }
  return result;
}

ArrayExtractionResult extract_array_virtualization(
    const BuiltDevice& device, const ArrayExtractionOptions& opt,
    const AcquisitionContext& context) {
  const std::size_t n = device.model.num_dots();
  QVG_EXPECTS(n >= 2);
  QVG_EXPECTS(opt.pixels_per_axis >= 16);

  // The paper's n-1 sequential pair extractions are independent given their
  // per-pair simulators, so they shard out over the pool: each shard runs
  // its pairs serially, shards run concurrently, and every pair writes only
  // its own preallocated slot — no mutable state (simulator, ProbeCache,
  // noise stream) crosses a shard boundary, so the hot probe path never
  // contends on a lock. The shared context stops every pair at its next
  // batch boundary (a probe budget applies per pair, since each pair drives
  // its own simulator and cache).
  const auto plan = plan_array_shards(n - 1, opt.shards);
  std::vector<PairExtraction> pairs(n - 1);
  auto run_shards = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s)
      for (const std::size_t pair_index : plan[s])
        pairs[pair_index] =
            extract_array_pair(device, opt, pair_index, context);
  };
  if (opt.parallel)
    parallel_for_rows(plan.size(), run_shards, 1);
  else
    run_shards(0, plan.size());

  return compose_array_result(device, std::move(pairs), opt.shards);
}

}  // namespace qvg
