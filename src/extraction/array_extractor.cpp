#include "extraction/array_extractor.hpp"

#include "common/assert.hpp"

#include <cmath>
#include <memory>

namespace qvg {

ArrayExtractionResult extract_array_virtualization(
    const BuiltDevice& device, const ArrayExtractionOptions& opt) {
  const std::size_t n = device.model.num_dots();
  QVG_EXPECTS(n >= 2);
  QVG_EXPECTS(opt.pixels_per_axis >= 16);

  ArrayExtractionResult result;
  result.matrix = Matrix::identity(n);

  // Reference: nearest-neighbour band of the exact compensation matrix.
  result.reference = device.model.ideal_virtualization();

  std::vector<VirtualGatePair> pairs_for_compose;
  bool all_ok = true;

  for (std::size_t pair_index = 0; pair_index + 1 < n; ++pair_index) {
    DeviceSimulator sim = make_pair_simulator(
        device, pair_index, opt.noise_seed + pair_index, opt.dwell_seconds);
    if (opt.white_noise_sigma > 0.0)
      sim.add_noise(std::make_unique<WhiteNoise>(opt.white_noise_sigma));
    const VoltageAxis axis = scan_axis(device, opt.pixels_per_axis);

    PairExtraction pair;
    pair.pair_index = pair_index;

    if (opt.method == ExtractionMethod::kFast) {
      const auto extraction = run_fast_extraction(sim, axis, axis, opt.fast);
      pair.success = extraction.success;
      pair.failure_reason = extraction.failure_reason;
      pair.gates = extraction.virtual_gates;
      pair.stats = extraction.stats;
    } else {
      const auto extraction = run_hough_baseline(sim, axis, axis, opt.baseline);
      pair.success = extraction.success;
      pair.failure_reason = extraction.failure_reason;
      pair.gates = extraction.virtual_gates;
      pair.stats = extraction.stats;
    }
    pair.verdict = judge_extraction(pair.success, pair.gates, sim.truth(),
                                    opt.verdict);

    result.total_stats.unique_probes += pair.stats.unique_probes;
    result.total_stats.total_requests += pair.stats.total_requests;
    result.total_stats.simulated_seconds += pair.stats.simulated_seconds;
    result.total_stats.compute_seconds += pair.stats.compute_seconds;

    if (pair.success) {
      result.matrix(pair_index, pair_index + 1) = pair.gates.alpha12;
      result.matrix(pair_index + 1, pair_index) = pair.gates.alpha21;
      pairs_for_compose.push_back(pair.gates);
    } else {
      all_ok = false;
    }
    result.pairs.push_back(std::move(pair));
  }

  // Band error vs the reference compensation matrix.
  double worst = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    worst = std::max(worst, std::abs(result.matrix(i, i + 1) -
                                     result.reference(i, i + 1)));
    worst = std::max(worst, std::abs(result.matrix(i + 1, i) -
                                     result.reference(i + 1, i)));
  }
  result.band_max_error = worst;
  result.success = all_ok;
  return result;
}

}  // namespace qvg
