#include "extraction/anchors.hpp"

#include "common/assert.hpp"
#include "extraction/feature_gradient.hpp"
#include "imgproc/kernel.hpp"
#include "probe/retry_policy.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <utility>

namespace qvg {

namespace {

/// The window-clamped voltage of a (possibly out-of-range) pixel.
Point2 clamped_voltage(const VoltageAxis& x_axis, const VoltageAxis& y_axis,
                       std::ptrdiff_t x, std::ptrdiff_t y) {
  const auto w = static_cast<std::ptrdiff_t>(x_axis.count());
  const auto h = static_cast<std::ptrdiff_t>(y_axis.count());
  const auto cx = std::clamp<std::ptrdiff_t>(x, 0, w - 1);
  const auto cy = std::clamp<std::ptrdiff_t>(y, 0, h - 1);
  return {x_axis.voltage(static_cast<double>(cx)),
          y_axis.voltage(static_cast<double>(cy))};
}

/// Batched mask sweep: cross-correlate `mask` at every centre pixel in
/// `centers`, writing one response per centre into `responses`. Every
/// non-zero mask tap of every centre goes out as one probe batch through
/// probe_with_retry, in the same (centre-major, row-major tap) order the
/// scalar sweep probed them, so a fault-free acquisition is bit-identical;
/// on failure `responses` is unspecified and the Status propagates.
[[nodiscard]] Status mask_responses(CurrentSource& source,
                                    const VoltageAxis& x_axis,
                                    const VoltageAxis& y_axis,
                                    const Kernel2D& mask,
                                    const std::vector<Pixel>& centers,
                                    const AcquisitionContext& context,
                                    std::vector<double>& responses) {
  const auto rx = static_cast<std::ptrdiff_t>(mask.width()) / 2;
  const auto ry = static_cast<std::ptrdiff_t>(mask.height()) / 2;

  std::vector<Point2> probes;
  std::vector<double> weights;
  probes.reserve(centers.size() * mask.width() * mask.height());
  weights.reserve(probes.capacity());
  std::vector<std::size_t> offsets;  // per-centre start into probes
  offsets.reserve(centers.size() + 1);
  for (const Pixel& center : centers) {
    offsets.push_back(probes.size());
    for (std::size_t my = 0; my < mask.height(); ++my) {
      for (std::size_t mx = 0; mx < mask.width(); ++mx) {
        const double w = mask(mx, my);
        if (w == 0.0) continue;
        probes.push_back(clamped_voltage(
            x_axis, y_axis, center.x + static_cast<std::ptrdiff_t>(mx) - rx,
            center.y + static_cast<std::ptrdiff_t>(my) - ry));
        weights.push_back(w);
      }
    }
  }
  offsets.push_back(probes.size());

  std::vector<double> currents(probes.size());
  const ProbeOutcome outcome =
      probe_with_retry(source, probes, currents, context, "anchors");
  if (!outcome.ok()) return outcome.status;

  responses.assign(centers.size(), 0.0);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    double acc = 0.0;
    for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k)
      acc += weights[k] * currents[k];
    responses[i] = acc;
  }
  return Status{};
}

/// Gaussian prior over [0, n), centred at the sweep *start* with
/// sigma = fraction * n. The sweep starts inside the empty (0,0) region, so
/// the first transition line encountered is the wanted one; the decaying
/// prior suppresses the (equally sharp) second-electron lines farther out.
std::vector<double> gaussian_prior(std::size_t n, double sigma_fraction) {
  std::vector<double> prior(n, 1.0);
  if (n < 2) return prior;
  const double sigma = std::max(sigma_fraction * static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sigma;
    prior[i] = std::exp(-0.5 * t * t);
  }
  return prior;
}

}  // namespace

namespace {

Status anchor_failure(std::string detail) {
  return Status::failure(ErrorCode::kAnchorNotFound, "anchors",
                         std::move(detail));
}

}  // namespace

Result<AnchorResult> find_anchor_points(CurrentSource& source,
                                        const VoltageAxis& x_axis,
                                        const VoltageAxis& y_axis,
                                        const AnchorOptions& opt,
                                        const AcquisitionContext& context) {
  const auto w = static_cast<std::ptrdiff_t>(x_axis.count());
  const auto h = static_cast<std::ptrdiff_t>(y_axis.count());
  if (w < 12 || h < 12)
    return anchor_failure("scan window too small for anchor preprocessing");
  QVG_EXPECTS(opt.num_diagonal_points >= 2);

  // One interruption check per probe batch; a batch in flight always runs to
  // completion so the probe accounting stays well-defined.
  auto interrupted = [&](Status& status) {
    status = context.check("anchors", source.probe_count());
    return !status.ok();
  };
  Status interrupt;

  AnchorResult result;

  // 1. Diagonal probe: ten equally spaced points (one batched request), find
  //    the brightest.
  if (interrupted(interrupt)) return interrupt;
  const int nd = opt.num_diagonal_points;
  std::vector<Pixel> diagonal;
  diagonal.reserve(static_cast<std::size_t>(nd));
  std::vector<Point2> diagonal_probes;
  diagonal_probes.reserve(static_cast<std::size_t>(nd));
  for (int k = 0; k < nd; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(nd - 1);
    const auto px = static_cast<std::ptrdiff_t>(
        std::llround(frac * static_cast<double>(w - 1)));
    const auto py = static_cast<std::ptrdiff_t>(
        std::llround(frac * static_cast<double>(h - 1)));
    diagonal.push_back({static_cast<int>(px), static_cast<int>(py)});
    diagonal_probes.push_back(clamped_voltage(x_axis, y_axis, px, py));
  }
  std::vector<double> diagonal_currents(diagonal_probes.size());
  if (const ProbeOutcome outcome = probe_with_retry(
          source, diagonal_probes, diagonal_currents, context, "anchors");
      !outcome.ok())
    return outcome.status;
  Pixel brightest{0, 0};
  double brightest_current = -1e300;
  for (std::size_t k = 0; k < diagonal.size(); ++k) {
    if (diagonal_currents[k] > brightest_current) {
      brightest_current = diagonal_currents[k];
      brightest = diagonal[k];
    }
  }

  // 2. Starting point: brightest diagonal point or the 10%-width/height
  //    point, whichever is farther from the lower-left corner.
  const Pixel fallback{
      static_cast<int>(std::llround(opt.start_fraction * static_cast<double>(w - 1))),
      static_cast<int>(std::llround(opt.start_fraction * static_cast<double>(h - 1)))};
  const Pixel origin{0, 0};
  result.start =
      distance(brightest, origin) >= distance(fallback, origin) ? brightest
                                                                : fallback;

  // 3. Mask sweeps with a Gaussian prior.
  const Kernel2D mask_x = paper_mask_x();
  const Kernel2D mask_y = paper_mask_y();

  // Sweep Mask_x rightward along the starting row: anchor B (steep line).
  {
    const std::ptrdiff_t x_lo = result.start.x;
    const std::ptrdiff_t x_hi = w - 1;
    if (x_hi <= x_lo) return anchor_failure("empty Mask_x sweep range");
    if (interrupted(interrupt)) return interrupt;
    const auto n = static_cast<std::size_t>(x_hi - x_lo + 1);
    std::vector<Pixel> centers(n);
    for (std::size_t i = 0; i < n; ++i)
      centers[i] = {static_cast<int>(x_lo + static_cast<std::ptrdiff_t>(i)),
                    result.start.y};
    if (Status status = mask_responses(source, x_axis, y_axis, mask_x,
                                       centers, context, result.response_x);
        !status.ok())
      return status;
    const auto prior = gaussian_prior(n, opt.gaussian_sigma_fraction);
    std::size_t best = 0;
    double best_value = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = result.response_x[i] * prior[i];
      if (v > best_value) {
        best_value = v;
        best = i;
      }
    }
    result.anchor_b = {static_cast<int>(x_lo + static_cast<std::ptrdiff_t>(best)),
                       result.start.y};
  }

  // Sweep Mask_y upward along the starting column: anchor A (shallow line).
  {
    const std::ptrdiff_t y_lo = result.start.y;
    const std::ptrdiff_t y_hi = h - 1;
    if (y_hi <= y_lo) return anchor_failure("empty Mask_y sweep range");
    if (interrupted(interrupt)) return interrupt;
    const auto n = static_cast<std::size_t>(y_hi - y_lo + 1);
    std::vector<Pixel> centers(n);
    for (std::size_t i = 0; i < n; ++i)
      centers[i] = {result.start.x,
                    static_cast<int>(y_lo + static_cast<std::ptrdiff_t>(i))};
    if (Status status = mask_responses(source, x_axis, y_axis, mask_y,
                                       centers, context, result.response_y);
        !status.ok())
      return status;
    const auto prior = gaussian_prior(n, opt.gaussian_sigma_fraction);
    std::size_t best = 0;
    double best_value = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = result.response_y[i] * prior[i];
      if (v > best_value) {
        best_value = v;
        best = i;
      }
    }
    result.anchor_a = {result.start.x,
                       static_cast<int>(y_lo + static_cast<std::ptrdiff_t>(best))};
  }

  // Snap each anchor to the nearby feature-gradient maximum so the fit's
  // fixed endpoints use the same bright-side pixel convention as the sweeps.
  if (opt.snap_radius > 0) {
    FeatureGradientBatch batch;
    {
      if (interrupted(interrupt)) return interrupt;
      std::vector<int> candidates;
      for (int dy = -opt.snap_radius; dy <= opt.snap_radius; ++dy) {
        const int y = result.anchor_a.y + dy;
        if (y < 0 || y >= static_cast<int>(h)) continue;
        candidates.push_back(dy);
        batch.add(x_axis.voltage(static_cast<double>(result.anchor_a.x)),
                  y_axis.voltage(static_cast<double>(y)));
      }
      std::span<const double> gradients;
      if (Status status = batch.try_evaluate(source, x_axis.step(),
                                             y_axis.step(), context, "anchors",
                                             gradients);
          !status.ok())
        return status;
      int best_dy = 0;
      double best_g = -1e300;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (gradients[i] > best_g) {
          best_g = gradients[i];
          best_dy = candidates[i];
        }
      }
      result.anchor_a.y += best_dy;
    }
    {
      if (interrupted(interrupt)) return interrupt;
      batch.clear();
      std::vector<int> candidates;
      for (int dx = -opt.snap_radius; dx <= opt.snap_radius; ++dx) {
        const int x = result.anchor_b.x + dx;
        if (x < 0 || x >= static_cast<int>(w)) continue;
        candidates.push_back(dx);
        batch.add(x_axis.voltage(static_cast<double>(x)),
                  y_axis.voltage(static_cast<double>(result.anchor_b.y)));
      }
      std::span<const double> gradients;
      if (Status status = batch.try_evaluate(source, x_axis.step(),
                                             y_axis.step(), context, "anchors",
                                             gradients);
          !status.ok())
        return status;
      int best_dx = 0;
      double best_g = -1e300;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (gradients[i] > best_g) {
          best_g = gradients[i];
          best_dx = candidates[i];
        }
      }
      result.anchor_b.x += best_dx;
    }
  }

  // The anchors must span a valid triangle: A strictly left of and above B.
  if (!(result.anchor_a.x < result.anchor_b.x &&
        result.anchor_a.y > result.anchor_b.y)) {
    return anchor_failure(
        "anchor points do not form a valid critical region (A must be left "
        "of and above B)");
  }
  return result;
}

}  // namespace qvg
