#include "extraction/anchors.hpp"

#include "common/assert.hpp"
#include "extraction/feature_gradient.hpp"
#include "imgproc/kernel.hpp"
#include "probe/driver/instrument_driver.hpp"
#include "probe/retry_policy.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qvg {

namespace {

/// The window-clamped voltage of a (possibly out-of-range) pixel.
Point2 clamped_voltage(const VoltageAxis& x_axis, const VoltageAxis& y_axis,
                       std::ptrdiff_t x, std::ptrdiff_t y) {
  const auto w = static_cast<std::ptrdiff_t>(x_axis.count());
  const auto h = static_cast<std::ptrdiff_t>(y_axis.count());
  const auto cx = std::clamp<std::ptrdiff_t>(x, 0, w - 1);
  const auto cy = std::clamp<std::ptrdiff_t>(y, 0, h - 1);
  return {x_axis.voltage(static_cast<double>(cx)),
          y_axis.voltage(static_cast<double>(cy))};
}

/// Batched mask sweep, split for pipelined submission: build() queues every
/// non-zero mask tap of every centre in the same (centre-major, row-major
/// tap) order the scalar sweep probed them, submit() posts the batch to the
/// driver, and reduce() (valid once the completion is ok) accumulates one
/// weighted response per centre — so a fault-free acquisition is
/// bit-identical to the scalar sweep regardless of how submission overlaps.
struct MaskSweep {
  std::vector<Point2> probes;
  std::vector<double> weights;
  std::vector<std::size_t> offsets;  // per-centre start into probes
  std::vector<double> currents;
  std::size_t center_count = 0;

  void build(const VoltageAxis& x_axis, const VoltageAxis& y_axis,
             const Kernel2D& mask, const std::vector<Pixel>& centers) {
    const auto rx = static_cast<std::ptrdiff_t>(mask.width()) / 2;
    const auto ry = static_cast<std::ptrdiff_t>(mask.height()) / 2;
    center_count = centers.size();
    probes.clear();
    weights.clear();
    offsets.clear();
    probes.reserve(centers.size() * mask.width() * mask.height());
    weights.reserve(probes.capacity());
    offsets.reserve(centers.size() + 1);
    for (const Pixel& center : centers) {
      offsets.push_back(probes.size());
      for (std::size_t my = 0; my < mask.height(); ++my) {
        for (std::size_t mx = 0; mx < mask.width(); ++mx) {
          const double w = mask(mx, my);
          if (w == 0.0) continue;
          probes.push_back(clamped_voltage(
              x_axis, y_axis, center.x + static_cast<std::ptrdiff_t>(mx) - rx,
              center.y + static_cast<std::ptrdiff_t>(my) - ry));
          weights.push_back(w);
        }
      }
    }
    offsets.push_back(probes.size());
    currents.resize(probes.size());
  }

  [[nodiscard]] CompletionHandle submit(AsyncCurrentSource& driver,
                                        const AcquisitionContext& context) {
    return driver.submit(probes, currents, context, "anchors");
  }

  void reduce(std::vector<double>& responses) const {
    responses.assign(center_count, 0.0);
    for (std::size_t i = 0; i < center_count; ++i) {
      double acc = 0.0;
      for (std::size_t k = offsets[i]; k < offsets[i + 1]; ++k)
        acc += weights[k] * currents[k];
      responses[i] = acc;
    }
  }
};

/// Gaussian prior over [0, n), centred at the sweep *start* with
/// sigma = fraction * n. The sweep starts inside the empty (0,0) region, so
/// the first transition line encountered is the wanted one; the decaying
/// prior suppresses the (equally sharp) second-electron lines farther out.
std::vector<double> gaussian_prior(std::size_t n, double sigma_fraction) {
  std::vector<double> prior(n, 1.0);
  if (n < 2) return prior;
  const double sigma = std::max(sigma_fraction * static_cast<double>(n), 1e-9);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / sigma;
    prior[i] = std::exp(-0.5 * t * t);
  }
  return prior;
}

Status anchor_failure(std::string detail) {
  return Status::failure(ErrorCode::kAnchorNotFound, "anchors",
                         std::move(detail));
}

/// Prior-weighted argmax of a response array.
std::size_t weighted_argmax(const std::vector<double>& responses,
                            const std::vector<double>& prior) {
  std::size_t best = 0;
  double best_value = -1e300;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const double v = responses[i] * prior[i];
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  return best;
}

}  // namespace

Result<AnchorResult> find_anchor_points(AsyncCurrentSource& driver,
                                        const VoltageAxis& x_axis,
                                        const VoltageAxis& y_axis,
                                        const AnchorOptions& opt,
                                        const AcquisitionContext& context) {
  const auto w = static_cast<std::ptrdiff_t>(x_axis.count());
  const auto h = static_cast<std::ptrdiff_t>(y_axis.count());
  if (w < 12 || h < 12)
    return anchor_failure("scan window too small for anchor preprocessing");
  QVG_EXPECTS(opt.num_diagonal_points >= 2);

  // Lookahead only helps when the driver actually overlaps transfers. At
  // depth 1 (the SyncSourceAdapter, or a depth-1 ring) every batch is
  // submitted strictly after the check that gates it, which keeps the
  // interrupted behaviour — which batches were issued when the job stopped —
  // call-for-call identical to the pre-driver synchronous loop. At depth
  // >= 2 independent batches (the two mask sweeps; the two snap scans) are
  // submitted back to back so the transport pipelines them; the checks keep
  // their synchronous *values* (they are driven by completion-carried probe
  // counts), so an uninterrupted run is bit-identical at any depth.
  const bool pipelined = driver.depth() >= 2;

  // One interruption check per probe batch; a batch in flight always runs to
  // completion so the probe accounting stays well-defined. `last_probes`
  // mirrors source.probe_count() at the equivalent synchronous boundary.
  long last_probes = driver.probes_completed();
  auto interrupted = [&](Status& status) {
    status = context.check("anchors", last_probes);
    return !status.ok();
  };
  Status interrupt;

  // On an early return with a batch still in flight: abort it and wait the
  // handle out, so the local buffers it points into stay valid for the
  // driver's lifetime rules.
  const auto discard = [&](CompletionHandle& handle) {
    if (!handle.valid()) return;
    driver.abort_inflight();
    (void)handle.wait();
    handle = CompletionHandle();
  };

  AnchorResult result;

  // 1. Diagonal probe: ten equally spaced points (one batched request), find
  //    the brightest. Everything downstream depends on it, so it is always
  //    submit + wait.
  if (interrupted(interrupt)) return interrupt;
  const int nd = opt.num_diagonal_points;
  std::vector<Pixel> diagonal;
  diagonal.reserve(static_cast<std::size_t>(nd));
  std::vector<Point2> diagonal_probes;
  diagonal_probes.reserve(static_cast<std::size_t>(nd));
  for (int k = 0; k < nd; ++k) {
    const double frac = static_cast<double>(k) / static_cast<double>(nd - 1);
    const auto px = static_cast<std::ptrdiff_t>(
        std::llround(frac * static_cast<double>(w - 1)));
    const auto py = static_cast<std::ptrdiff_t>(
        std::llround(frac * static_cast<double>(h - 1)));
    diagonal.push_back({static_cast<int>(px), static_cast<int>(py)});
    diagonal_probes.push_back(clamped_voltage(x_axis, y_axis, px, py));
  }
  std::vector<double> diagonal_currents(diagonal_probes.size());
  {
    CompletionHandle handle =
        driver.submit(diagonal_probes, diagonal_currents, context, "anchors");
    const BatchCompletion& completion = handle.wait();
    if (!completion.outcome.ok()) return completion.outcome.status;
    last_probes = completion.probes_after;
  }
  Pixel brightest{0, 0};
  double brightest_current = -1e300;
  for (std::size_t k = 0; k < diagonal.size(); ++k) {
    if (diagonal_currents[k] > brightest_current) {
      brightest_current = diagonal_currents[k];
      brightest = diagonal[k];
    }
  }

  // 2. Starting point: brightest diagonal point or the 10%-width/height
  //    point, whichever is farther from the lower-left corner.
  const Pixel fallback{
      static_cast<int>(std::llround(opt.start_fraction * static_cast<double>(w - 1))),
      static_cast<int>(std::llround(opt.start_fraction * static_cast<double>(h - 1)))};
  const Pixel origin{0, 0};
  result.start =
      distance(brightest, origin) >= distance(fallback, origin) ? brightest
                                                                : fallback;

  // 3. Mask sweeps with a Gaussian prior. Both sweeps depend only on the
  //    starting point, so a pipelined driver runs them back to back.
  const Kernel2D mask_x = paper_mask_x();
  const Kernel2D mask_y = paper_mask_y();

  const std::ptrdiff_t x_lo = result.start.x;
  const std::ptrdiff_t x_hi = w - 1;
  if (x_hi <= x_lo) return anchor_failure("empty Mask_x sweep range");
  if (interrupted(interrupt)) return interrupt;

  MaskSweep sweep_x;
  {
    const auto n = static_cast<std::size_t>(x_hi - x_lo + 1);
    std::vector<Pixel> centers(n);
    for (std::size_t i = 0; i < n; ++i)
      centers[i] = {static_cast<int>(x_lo + static_cast<std::ptrdiff_t>(i)),
                    result.start.y};
    sweep_x.build(x_axis, y_axis, mask_x, centers);
  }
  const std::ptrdiff_t y_lo = result.start.y;
  const std::ptrdiff_t y_hi = h - 1;
  MaskSweep sweep_y;
  if (y_hi > y_lo) {
    const auto n = static_cast<std::size_t>(y_hi - y_lo + 1);
    std::vector<Pixel> centers(n);
    for (std::size_t i = 0; i < n; ++i)
      centers[i] = {result.start.x,
                    static_cast<int>(y_lo + static_cast<std::ptrdiff_t>(i))};
    sweep_y.build(x_axis, y_axis, mask_y, centers);
  }

  CompletionHandle handle_x = sweep_x.submit(driver, context);
  CompletionHandle handle_y;
  if (pipelined && y_hi > y_lo) handle_y = sweep_y.submit(driver, context);

  // Sweep Mask_x rightward along the starting row: anchor B (steep line).
  {
    const BatchCompletion& completion = handle_x.wait();
    if (!completion.outcome.ok()) {
      discard(handle_y);
      return completion.outcome.status;
    }
    last_probes = completion.probes_after;
    sweep_x.reduce(result.response_x);
    const auto n = static_cast<std::size_t>(x_hi - x_lo + 1);
    const auto prior = gaussian_prior(n, opt.gaussian_sigma_fraction);
    const std::size_t best = weighted_argmax(result.response_x, prior);
    result.anchor_b = {static_cast<int>(x_lo + static_cast<std::ptrdiff_t>(best)),
                       result.start.y};
  }

  // Sweep Mask_y upward along the starting column: anchor A (shallow line).
  if (y_hi <= y_lo) return anchor_failure("empty Mask_y sweep range");
  if (interrupted(interrupt)) {
    discard(handle_y);
    return interrupt;
  }
  {
    if (!handle_y.valid()) handle_y = sweep_y.submit(driver, context);
    const BatchCompletion& completion = handle_y.wait();
    if (!completion.outcome.ok()) return completion.outcome.status;
    last_probes = completion.probes_after;
    sweep_y.reduce(result.response_y);
    const auto n = static_cast<std::size_t>(y_hi - y_lo + 1);
    const auto prior = gaussian_prior(n, opt.gaussian_sigma_fraction);
    const std::size_t best = weighted_argmax(result.response_y, prior);
    result.anchor_a = {result.start.x,
                       static_cast<int>(y_lo + static_cast<std::ptrdiff_t>(best))};
  }

  // Snap each anchor to the nearby feature-gradient maximum so the fit's
  // fixed endpoints use the same bright-side pixel convention as the sweeps.
  // The two scans are independent once both anchors are known, so a
  // pipelined driver runs them back to back too.
  if (opt.snap_radius > 0) {
    if (interrupted(interrupt)) return interrupt;
    FeatureGradientBatch batch_a;
    std::vector<int> candidates_a;
    for (int dy = -opt.snap_radius; dy <= opt.snap_radius; ++dy) {
      const int y = result.anchor_a.y + dy;
      if (y < 0 || y >= static_cast<int>(h)) continue;
      candidates_a.push_back(dy);
      batch_a.add(x_axis.voltage(static_cast<double>(result.anchor_a.x)),
                  y_axis.voltage(static_cast<double>(y)));
    }
    FeatureGradientBatch batch_b;
    std::vector<int> candidates_b;
    for (int dx = -opt.snap_radius; dx <= opt.snap_radius; ++dx) {
      const int x = result.anchor_b.x + dx;
      if (x < 0 || x >= static_cast<int>(w)) continue;
      candidates_b.push_back(dx);
      batch_b.add(x_axis.voltage(static_cast<double>(x)),
                  y_axis.voltage(static_cast<double>(result.anchor_b.y)));
    }

    CompletionHandle handle_a =
        batch_a.submit(driver, x_axis.step(), y_axis.step(), context,
                       "anchors");
    CompletionHandle handle_b;
    if (pipelined)
      handle_b =
          batch_b.submit(driver, x_axis.step(), y_axis.step(), context,
                         "anchors");

    {
      const BatchCompletion& completion = handle_a.wait();
      if (!completion.outcome.ok()) {
        discard(handle_b);
        return completion.outcome.status;
      }
      last_probes = completion.probes_after;
      const std::span<const double> gradients = batch_a.reduce();
      int best_dy = 0;
      double best_g = -1e300;
      for (std::size_t i = 0; i < candidates_a.size(); ++i) {
        if (gradients[i] > best_g) {
          best_g = gradients[i];
          best_dy = candidates_a[i];
        }
      }
      result.anchor_a.y += best_dy;
    }
    if (interrupted(interrupt)) {
      discard(handle_b);
      return interrupt;
    }
    {
      if (!handle_b.valid())
        handle_b =
            batch_b.submit(driver, x_axis.step(), y_axis.step(), context,
                           "anchors");
      const BatchCompletion& completion = handle_b.wait();
      if (!completion.outcome.ok()) return completion.outcome.status;
      last_probes = completion.probes_after;
      const std::span<const double> gradients = batch_b.reduce();
      int best_dx = 0;
      double best_g = -1e300;
      for (std::size_t i = 0; i < candidates_b.size(); ++i) {
        if (gradients[i] > best_g) {
          best_g = gradients[i];
          best_dx = candidates_b[i];
        }
      }
      result.anchor_b.x += best_dx;
    }
  }

  // The anchors must span a valid triangle: A strictly left of and above B.
  if (!(result.anchor_a.x < result.anchor_b.x &&
        result.anchor_a.y > result.anchor_b.y)) {
    return anchor_failure(
        "anchor points do not form a valid critical region (A must be left "
        "of and above B)");
  }
  return result;
}

Result<AnchorResult> find_anchor_points(CurrentSource& source,
                                        const VoltageAxis& x_axis,
                                        const VoltageAxis& y_axis,
                                        const AnchorOptions& opt,
                                        const AcquisitionContext& context) {
  if (context.transport.enabled()) {
    InstrumentDriver driver(source, context.transport, context.faults);
    return find_anchor_points(driver, x_axis, y_axis, opt, context);
  }
  SyncSourceAdapter adapter(source);
  return find_anchor_points(adapter, x_axis, y_axis, opt, context);
}

}  // namespace qvg
