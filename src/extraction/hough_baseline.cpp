#include "extraction/hough_baseline.hpp"

#include "common/stopwatch.hpp"
#include "imgproc/filters.hpp"
#include "linalg/least_squares.hpp"
#include "probe/raster.hpp"

#include <cmath>

namespace qvg {

namespace {

/// Pick the strongest line whose pixel-space slope falls in [lo, hi).
/// Returns false when no line qualifies.
bool pick_family(const std::vector<HoughLine>& lines, double lo, double hi,
                 int min_votes, HoughLine& out) {
  bool found = false;
  for (const auto& line : lines) {
    const auto slope = line.slope();
    if (!slope) continue;  // vertical: outside both families
    if (*slope < lo || *slope >= hi) continue;
    if (line.votes < min_votes) continue;
    if (!found || line.votes > out.votes) {
      out = line;
      found = true;
    }
  }
  return found;
}

/// Refine a Hough peak's slope by least-squares fitting the edge pixels
/// within `tol` pixels of the line (standard accumulator-quantization
/// polish). Steep lines are fitted as x(y) to stay well conditioned; the
/// returned value is always dy/dx.
double refine_slope(const GridU8& edges, const HoughLine& line, double tol) {
  const double c = std::cos(line.theta);
  const double s = std::sin(line.theta);
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t y = 0; y < edges.height(); ++y) {
    for (std::size_t x = 0; x < edges.width(); ++x) {
      if (edges(x, y) == 0) continue;
      const auto fx = static_cast<double>(x);
      const auto fy = static_cast<double>(y);
      if (std::abs(fx * c + fy * s - line.rho) > tol) continue;
      xs.push_back(fx);
      ys.push_back(fy);
    }
  }
  const auto fallback = line.slope();
  if (xs.size() < 4) return fallback.value_or(-1e9);
  const bool steep = !fallback || std::abs(*fallback) > 1.0;
  try {
    if (steep) {
      const LineFit fit = fit_line(ys, xs);  // x = m' y + c'
      if (std::abs(fit.slope) < 1e-9) return fallback.value_or(-1e9);
      return 1.0 / fit.slope;
    }
    return fit_line(xs, ys).slope;
  } catch (const NumericalError&) {
    return fallback.value_or(-1e9);
  }
}

}  // namespace

HoughBaselineResult analyze_csd_with_hough(const Csd& csd,
                                           const HoughBaselineOptions& opt) {
  HoughBaselineResult result;
  Stopwatch wall;

  result.acquired = csd;
  const GridD normalized = normalize01(csd.grid());
  const GridU8 edges = canny(normalized, opt.canny);
  for (auto v : edges.raw()) result.edge_pixels += v != 0 ? 1 : 0;

  result.lines = hough_lines(edges, opt.hough);

  const double diag = std::hypot(static_cast<double>(csd.width()),
                                 static_cast<double>(csd.height()));
  const int min_votes =
      static_cast<int>(opt.min_votes_diag_fraction * diag);

  const bool have_steep =
      pick_family(result.lines, -opt.max_abs_slope, opt.steep_threshold,
                  min_votes, result.steep_line);
  const bool have_shallow =
      pick_family(result.lines, opt.steep_threshold, -1.0 / opt.max_abs_slope,
                  min_votes, result.shallow_line);

  if (!have_steep || !have_shallow) {
    result.status = Status::failure(
        ErrorCode::kLineNotFound, "hough",
        !have_steep && !have_shallow
            ? "found no transition line in either family"
        : !have_steep ? "found no steep (0,0)->(1,0) transition line"
                      : "found no shallow (0,0)->(0,1) transition line");
    result.stats.compute_seconds = wall.elapsed_seconds();
    return result;
  }

  const double unit_ratio = csd.y_axis().step() / csd.x_axis().step();
  double steep_pix = *result.steep_line.slope();
  double shallow_pix = *result.shallow_line.slope();
  if (opt.refine_tolerance_px > 0.0) {
    steep_pix = refine_slope(edges, result.steep_line, opt.refine_tolerance_px);
    shallow_pix =
        refine_slope(edges, result.shallow_line, opt.refine_tolerance_px);
  }
  result.slope_steep = steep_pix * unit_ratio;
  result.slope_shallow = shallow_pix * unit_ratio;

  auto pair =
      virtualization_from_slopes(result.slope_steep, result.slope_shallow);
  if (!pair) {
    result.status = Status::failure(ErrorCode::kDegenerateVirtualization,
                                    "virtualization", pair.reason());
    result.stats.compute_seconds = wall.elapsed_seconds();
    return result;
  }
  result.virtual_gates = *pair;
  result.stats.compute_seconds = wall.elapsed_seconds();
  return result;
}

HoughBaselineResult run_hough_baseline(CurrentSource& source,
                                       const VoltageAxis& x_axis,
                                       const VoltageAxis& y_axis,
                                       const HoughBaselineOptions& opt,
                                       const AcquisitionContext& context) {
  const double sim_start = source.clock().elapsed_seconds();
  const long probes_start = source.probe_count();

  auto fill_stats = [&](HoughBaselineResult& result) {
    result.stats.unique_probes = source.probe_count() - probes_start;
    result.stats.total_requests = result.stats.unique_probes;
    result.stats.simulated_seconds =
        source.clock().elapsed_seconds() - sim_start;
  };
  auto interrupted = [&](Status status) {
    HoughBaselineResult result;
    result.status = std::move(status);
    fill_stats(result);
    return result;
  };

  // Acquisition, context-checked between row batches; on interruption the
  // partial probe accounting is still reported.
  Result<Csd> csd = acquire_full_csd(source, x_axis, y_axis, context);
  if (!csd) return interrupted(csd.status());
  // One cancel/deadline check between the acquisition and the
  // image-processing stage: a job that expired before the (probe-free)
  // analysis reports stage "hough". The probe budget is deliberately not
  // consulted here — it caps what the job may *issue*, and a raster that
  // completed within its batch-granular budget keeps its analysis.
  if (Status s = context.check("hough"); !s.ok())
    return interrupted(std::move(s));

  HoughBaselineResult result = analyze_csd_with_hough(*csd, opt);
  fill_stats(result);
  return result;
}

}  // namespace qvg
