#include "extraction/success.hpp"

#include <cmath>
#include <sstream>

namespace qvg {

Verdict judge_extraction(bool extraction_succeeded,
                         const VirtualGatePair& extracted,
                         const TransitionTruth& truth,
                         const VerdictOptions& opt) {
  Verdict verdict;
  if (!extraction_succeeded) {
    verdict.reason = "method reported failure";
    return verdict;
  }

  const double true_a12 = truth.alpha12();
  const double true_a21 = truth.alpha21();
  verdict.alpha12_rel_error =
      std::abs(extracted.alpha12 - true_a12) / std::abs(true_a12);
  verdict.alpha21_rel_error =
      std::abs(extracted.alpha21 - true_a21) / std::abs(true_a21);
  verdict.virtualized_angle_deg = virtualized_angle_deg(
      extracted, truth.slope_steep, truth.slope_shallow);

  std::ostringstream reason;
  bool ok = true;
  if (verdict.alpha12_rel_error > opt.alpha_tolerance) {
    ok = false;
    reason << "alpha12 error " << verdict.alpha12_rel_error << " > "
           << opt.alpha_tolerance << "; ";
  }
  if (verdict.alpha21_rel_error > opt.alpha_tolerance) {
    ok = false;
    reason << "alpha21 error " << verdict.alpha21_rel_error << " > "
           << opt.alpha_tolerance << "; ";
  }
  if (verdict.virtualized_angle_deg < opt.min_virtualized_angle_deg) {
    ok = false;
    reason << "virtualized angle " << verdict.virtualized_angle_deg << " deg < "
           << opt.min_virtualized_angle_deg << "; ";
  }
  verdict.success = ok;
  verdict.reason = ok ? "within tolerance" : reason.str();
  return verdict;
}

}  // namespace qvg
