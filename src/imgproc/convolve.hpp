// 2-D cross-correlation / convolution over Grid2D images.
//
// The production entry points run a SIMD interior (stride-1 over x,
// simd::VecD::kLanes outputs at a time, unrolled kernel taps) with explicit
// scalar tails and sampler-based border handling; the *_reference variants
// keep the pre-SIMD scalar implementation as the equivalence ablation.
// Both share the per-output-pixel accumulation order, so fast and reference
// results are bit-identical on every path — pinned by the kernel geometry
// tests (prime sizes, non-square, sub-kernel images, non-lane-multiple
// widths, 1xN/Nx1 grids).
#pragma once

#include "grid/grid2d.hpp"
#include "imgproc/kernel.hpp"

#include <cstddef>
#include <vector>

namespace qvg {

enum class BorderMode {
  kReplicate,  // clamp coordinates to the border (default)
  kReflect,    // mirror across the border
  kZero,       // treat outside pixels as 0
};

/// Half-open index range [lo, hi) along one axis where the full kernel
/// window is in bounds. The ONE boundary-handling helper every convolution
/// path (scalar fast path, SIMD interior, tiled loops) derives its
/// interior/border split from; empty (lo == hi) when the kernel is larger
/// than the image.
struct InteriorSpan {
  std::ptrdiff_t lo = 0;
  std::ptrdiff_t hi = 0;
};
[[nodiscard]] InteriorSpan kernel_interior_span(std::ptrdiff_t extent,
                                                std::ptrdiff_t anchor,
                                                std::ptrdiff_t ksize) noexcept;

/// Cross-correlate `image` with `kernel` (no kernel flip; the paper's masks
/// are specified in correlation form). The anchor is the kernel center
/// (floor division for even sizes). Output has the same size as the input.
[[nodiscard]] GridD correlate(const GridD& image, const Kernel2D& kernel,
                              BorderMode border = BorderMode::kReplicate);

/// True convolution (kernel flipped in both axes).
[[nodiscard]] GridD convolve(const GridD& image, const Kernel2D& kernel,
                             BorderMode border = BorderMode::kReplicate);

/// Separable correlation with a horizontal then vertical 1-D tap vector.
[[nodiscard]] GridD correlate_separable(const GridD& image,
                                        const std::vector<double>& taps_x,
                                        const std::vector<double>& taps_y,
                                        BorderMode border = BorderMode::kReplicate);

/// Pre-SIMD scalar implementations, kept as the equivalence ablation and the
/// bench harness's before/after reference. Bit-identical to the fast paths.
[[nodiscard]] GridD correlate_reference(const GridD& image, const Kernel2D& kernel,
                                        BorderMode border = BorderMode::kReplicate);
[[nodiscard]] GridD convolve_reference(const GridD& image, const Kernel2D& kernel,
                                       BorderMode border = BorderMode::kReplicate);
[[nodiscard]] GridD correlate_separable_reference(
    const GridD& image, const std::vector<double>& taps_x,
    const std::vector<double>& taps_y,
    BorderMode border = BorderMode::kReplicate);

}  // namespace qvg
