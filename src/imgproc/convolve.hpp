// 2-D cross-correlation / convolution over Grid2D images.
#pragma once

#include "grid/grid2d.hpp"
#include "imgproc/kernel.hpp"

#include <vector>

namespace qvg {

enum class BorderMode {
  kReplicate,  // clamp coordinates to the border (default)
  kReflect,    // mirror across the border
  kZero,       // treat outside pixels as 0
};

/// Cross-correlate `image` with `kernel` (no kernel flip; the paper's masks
/// are specified in correlation form). The anchor is the kernel center
/// (floor division for even sizes). Output has the same size as the input.
[[nodiscard]] GridD correlate(const GridD& image, const Kernel2D& kernel,
                              BorderMode border = BorderMode::kReplicate);

/// True convolution (kernel flipped in both axes).
[[nodiscard]] GridD convolve(const GridD& image, const Kernel2D& kernel,
                             BorderMode border = BorderMode::kReplicate);

/// Separable correlation with a horizontal then vertical 1-D tap vector.
[[nodiscard]] GridD correlate_separable(const GridD& image,
                                        const std::vector<double>& taps_x,
                                        const std::vector<double>& taps_y,
                                        BorderMode border = BorderMode::kReplicate);

}  // namespace qvg
