#include "imgproc/kernel.hpp"

#include "common/assert.hpp"

#include <cmath>

namespace qvg {

namespace {

// Build a kernel from paper-style matrix rows (first row = top). Our Grid2D
// convention has y increasing upward, so the first matrix row is stored at
// the highest y index.
Kernel2D from_matrix_rows(const std::vector<std::vector<double>>& rows) {
  QVG_EXPECTS(!rows.empty() && !rows[0].empty());
  const std::size_t h = rows.size();
  const std::size_t w = rows[0].size();
  Kernel2D k(w, h);
  for (std::size_t r = 0; r < h; ++r) {
    QVG_EXPECTS(rows[r].size() == w);
    const std::size_t y = h - 1 - r;  // top matrix row -> highest y
    for (std::size_t x = 0; x < w; ++x) k(x, y) = rows[r][x];
  }
  return k;
}

}  // namespace

std::vector<double> gaussian_taps(double sigma, int radius) {
  QVG_EXPECTS(sigma > 0.0);
  if (radius < 0) radius = static_cast<int>(std::ceil(3.0 * sigma));
  QVG_EXPECTS(radius >= 0);
  std::vector<double> taps(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double v = std::exp(-0.5 * (i / sigma) * (i / sigma));
    taps[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (double& t : taps) t /= sum;
  return taps;
}

Kernel2D gaussian_kernel(double sigma, int radius) {
  const auto taps = gaussian_taps(sigma, radius);
  const std::size_t n = taps.size();
  Kernel2D k(n, n);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x) k(x, y) = taps[x] * taps[y];
  return k;
}

Kernel2D sobel_x_kernel() {
  return from_matrix_rows({{-1, 0, 1},
                           {-2, 0, 2},
                           {-1, 0, 1}});
}

Kernel2D sobel_y_kernel() {
  return from_matrix_rows({{1, 2, 1},
                           {0, 0, 0},
                           {-1, -2, -1}});
}

Kernel2D paper_mask_x() {
  // §4.4, Mask_x verbatim (first row = top). Positive weights lower-left,
  // negative upper-right: matches a negatively sloped falling edge in the
  // sensor current as VP1 increases (the steep transition line).
  return from_matrix_rows({{1, 1, -3, -4, -4},
                           {2, 2, 0, -2, -2},
                           {4, 4, 3, -1, -1}});
}

Kernel2D paper_mask_y() {
  // §4.4, Mask_y verbatim (first row = top).
  return from_matrix_rows({{-1, -2, -4},
                           {-1, -2, -4},
                           {3, 0, -3},
                           {4, 2, 1},
                           {4, 2, 1}});
}

double kernel_sum(const Kernel2D& k) {
  double acc = 0.0;
  for (double v : k.raw()) acc += v;
  return acc;
}

}  // namespace qvg
