#include "imgproc/hough.hpp"

#include "common/assert.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

namespace qvg {

std::optional<double> HoughLine::slope() const {
  // Line: x cos(t) + y sin(t) = rho -> y = (rho - x cos t) / sin t.
  const double s = std::sin(theta);
  if (std::abs(s) < 1e-6) return std::nullopt;  // vertical
  return -std::cos(theta) / s;
}

std::optional<double> HoughLine::intercept() const {
  const double s = std::sin(theta);
  if (std::abs(s) < 1e-6) return std::nullopt;
  return rho / s;
}

HoughAccumulator hough_accumulate(const GridU8& edges, const HoughOptions& opt) {
  QVG_EXPECTS(opt.rho_resolution > 0.0);
  QVG_EXPECTS(opt.theta_resolution_deg > 0.0);

  const double diag = std::hypot(static_cast<double>(edges.width()),
                                 static_cast<double>(edges.height()));
  HoughAccumulator acc;
  acc.rho_min = -diag;
  acc.rho_step = opt.rho_resolution;
  acc.theta_step = opt.theta_resolution_deg * std::numbers::pi / 180.0;

  const auto n_rho =
      static_cast<std::size_t>(std::ceil(2.0 * diag / acc.rho_step)) + 1;
  const auto n_theta =
      static_cast<std::size_t>(std::ceil(std::numbers::pi / acc.theta_step));
  acc.votes = Grid2D<int>(n_theta, n_rho, 0);

  // Precompute trig tables.
  std::vector<double> cos_t(n_theta);
  std::vector<double> sin_t(n_theta);
  for (std::size_t t = 0; t < n_theta; ++t) {
    const double theta = acc.theta_of_bin(t);
    cos_t[t] = std::cos(theta);
    sin_t[t] = std::sin(theta);
  }

  // Gather the (usually sparse) edge pixels once. Each theta-parallel chunk
  // owns a disjoint set of theta columns of the accumulator, so both paths
  // below are race-free; integer vote increments commute, so the counts are
  // identical to the serial pixel-major loop in either mode.
  std::vector<std::pair<double, double>> points;
  for (std::size_t y = 0; y < edges.height(); ++y)
    for (std::size_t x = 0; x < edges.width(); ++x)
      if (edges(x, y) != 0)
        points.emplace_back(static_cast<double>(x), static_cast<double>(y));

  if (opt.accumulate_mode == HoughAccumulateMode::kFlat) {
    // Ablation path: point-major over the whole theta chunk. Each point
    // touches a rho bin per theta across the full chunk, so consecutive
    // points stride through ~the whole accumulator — fine for small maps,
    // cache-hostile for large ones.
    parallel_for_rows(n_theta, [&](std::size_t t0, std::size_t t1) {
      for (const auto& [fx, fy] : points) {
        for (std::size_t t = t0; t < t1; ++t) {
          const double rho = fx * cos_t[t] + fy * sin_t[t];
          const auto bin = static_cast<std::ptrdiff_t>(
              std::round((rho - acc.rho_min) / acc.rho_step));
          if (bin < 0 || static_cast<std::size_t>(bin) >= n_rho) continue;
          ++acc.votes(t, static_cast<std::size_t>(bin));
        }
      }
    });
    return acc;
  }

  // Blocked path: bucket edge points into kTile x kTile spatial tiles.
  // Points in one tile are within kTile*sqrt(2) pixels of each other, so
  // for a fixed theta their rho values — and hence the accumulator rows they
  // touch — span a window of ~kTile*sqrt(2)/rho_step bins. Sweeping a tile's
  // points before moving on keeps that slab (x the chunk's theta columns)
  // resident in L1/L2 instead of re-streaming the full rho range per point.
  // The inner theta sweep is SIMD over VecD lanes with the identical
  // per-theta expression (fx*cos + fy*sin, then scalar round per lane).
  constexpr std::size_t kTile = 64;
  const std::size_t tiles_x = (edges.width() + kTile - 1) / kTile;
  const std::size_t tiles_y = (edges.height() + kTile - 1) / kTile;
  std::vector<std::vector<std::pair<double, double>>> tiles(tiles_x * tiles_y);
  for (const auto& [fx, fy] : points) {
    const auto tx = static_cast<std::size_t>(fx) / kTile;
    const auto ty = static_cast<std::size_t>(fy) / kTile;
    tiles[ty * tiles_x + tx].push_back({fx, fy});
  }

  constexpr std::size_t kLanes = simd::VecD::kLanes;
  const double rho_min = acc.rho_min;
  const double rho_step = acc.rho_step;
  int* votes = acc.votes.raw().data();
  parallel_for_rows(n_theta, [&](std::size_t t0, std::size_t t1) {
    for (const auto& tile : tiles) {
      for (const auto& [fx, fy] : tile) {
        const simd::VecD vx = simd::VecD::broadcast(fx);
        const simd::VecD vy = simd::VecD::broadcast(fy);
        std::size_t t = t0;
        for (; t + kLanes <= t1; t += kLanes) {
          const simd::VecD rho = vx * simd::VecD::load(cos_t.data() + t) +
                                 vy * simd::VecD::load(sin_t.data() + t);
          for (std::size_t l = 0; l < kLanes; ++l) {
            const auto bin = static_cast<std::ptrdiff_t>(
                std::round((rho[l] - rho_min) / rho_step));
            if (bin < 0 || static_cast<std::size_t>(bin) >= n_rho) continue;
            ++votes[static_cast<std::size_t>(bin) * n_theta + (t + l)];
          }
        }
        for (; t < t1; ++t) {
          const double rho = fx * cos_t[t] + fy * sin_t[t];
          const auto bin = static_cast<std::ptrdiff_t>(
              std::round((rho - rho_min) / rho_step));
          if (bin < 0 || static_cast<std::size_t>(bin) >= n_rho) continue;
          ++votes[static_cast<std::size_t>(bin) * n_theta + t];
        }
      }
    }
  });
  return acc;
}

std::vector<HoughLine> hough_peaks(const HoughAccumulator& acc,
                                   const HoughOptions& opt) {
  const auto n_theta = acc.votes.width();
  const auto n_rho = acc.votes.height();

  int threshold = opt.votes_threshold;
  if (threshold <= 0) {
    int max_votes = 0;
    for (int v : acc.votes.raw()) max_votes = std::max(max_votes, v);
    threshold = std::max(
        2, static_cast<int>(opt.adaptive_threshold_fraction * max_votes));
  }

  struct Peak {
    std::size_t t;
    std::size_t r;
    int votes;
  };
  std::vector<Peak> peaks;
  for (std::size_t r = 0; r < n_rho; ++r) {
    for (std::size_t t = 0; t < n_theta; ++t) {
      const int v = acc.votes(t, r);
      if (v < threshold) continue;
      // Local-maximum test in the NMS window (theta wraps around pi with a
      // rho sign flip; we ignore the wrap here — transition lines sit far
      // from theta = 0/pi after edge detection on negatively sloped lines).
      bool is_max = true;
      for (int dr = -opt.nms_rho_radius; dr <= opt.nms_rho_radius && is_max; ++dr) {
        for (int dt = -opt.nms_theta_radius; dt <= opt.nms_theta_radius; ++dt) {
          if (dr == 0 && dt == 0) continue;
          const auto nr = static_cast<std::ptrdiff_t>(r) + dr;
          const auto nt = static_cast<std::ptrdiff_t>(t) + dt;
          if (nr < 0 || nt < 0 || static_cast<std::size_t>(nr) >= n_rho ||
              static_cast<std::size_t>(nt) >= n_theta)
            continue;
          const int nv = acc.votes(static_cast<std::size_t>(nt),
                                   static_cast<std::size_t>(nr));
          if (nv > v || (nv == v && (dr < 0 || (dr == 0 && dt < 0)))) {
            is_max = false;
            break;
          }
        }
      }
      if (is_max) peaks.push_back({t, r, v});
    }
  }

  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.votes > b.votes; });
  if (peaks.size() > static_cast<std::size_t>(opt.max_lines))
    peaks.resize(static_cast<std::size_t>(opt.max_lines));

  std::vector<HoughLine> lines;
  lines.reserve(peaks.size());
  for (const auto& p : peaks) {
    HoughLine line;
    line.rho = acc.rho_of_bin(p.r);
    line.theta = acc.theta_of_bin(p.t);
    line.votes = p.votes;
    lines.push_back(line);
  }
  return lines;
}

std::vector<HoughLine> hough_lines(const GridU8& edges, const HoughOptions& opt) {
  return hough_peaks(hough_accumulate(edges, opt), opt);
}

}  // namespace qvg
