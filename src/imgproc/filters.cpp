#include "imgproc/filters.hpp"

#include "common/assert.hpp"
#include "imgproc/convolve.hpp"
#include "imgproc/kernel.hpp"

#include <algorithm>
#include <vector>

namespace qvg {

GridD gaussian_blur(const GridD& image, double sigma) {
  const auto taps = gaussian_taps(sigma);
  return correlate_separable(image, taps, taps, BorderMode::kReflect);
}

GridD median_filter(const GridD& image, int radius) {
  QVG_EXPECTS(radius >= 0);
  if (radius == 0) return image;
  GridD out(image.width(), image.height());
  std::vector<double> window;
  window.reserve(static_cast<std::size_t>((2 * radius + 1) * (2 * radius + 1)));
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      window.clear();
      for (int dy = -radius; dy <= radius; ++dy)
        for (int dx = -radius; dx <= radius; ++dx)
          window.push_back(image.clamped(static_cast<std::ptrdiff_t>(x) + dx,
                                         static_cast<std::ptrdiff_t>(y) + dy));
      auto mid = window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2);
      std::nth_element(window.begin(), mid, window.end());
      out(x, y) = *mid;
    }
  }
  return out;
}

GridD box_blur(const GridD& image, int radius) {
  QVG_EXPECTS(radius >= 0);
  if (radius == 0) return image;
  const auto n = static_cast<std::size_t>(2 * radius + 1);
  std::vector<double> taps(n, 1.0 / static_cast<double>(n));
  return correlate_separable(image, taps, taps, BorderMode::kReplicate);
}

GridD normalize01(const GridD& image) {
  QVG_EXPECTS(!image.empty());
  const auto [lo_it, hi_it] =
      std::minmax_element(image.raw().begin(), image.raw().end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  GridD out(image.width(), image.height());
  if (hi - lo < 1e-300) return out;  // constant image -> zeros
  const double scale = 1.0 / (hi - lo);
  for (std::size_t i = 0; i < image.raw().size(); ++i)
    out.raw()[i] = (image.raw()[i] - lo) * scale;
  return out;
}

}  // namespace qvg
