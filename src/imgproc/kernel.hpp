// Convolution kernels, including the paper's hand-designed anchor-detection
// masks (§4.4).
#pragma once

#include "grid/grid2d.hpp"

#include <vector>

namespace qvg {

/// A small 2-D kernel with explicit width/height; entries are addressed as
/// (x, y) = (column, row), consistent with Grid2D.
using Kernel2D = Grid2D<double>;

/// 1-D Gaussian taps of given sigma; radius defaults to ceil(3*sigma).
/// Normalized to sum 1.
[[nodiscard]] std::vector<double> gaussian_taps(double sigma, int radius = -1);

/// Separable 2-D Gaussian as an explicit kernel (for tests / reference path).
[[nodiscard]] Kernel2D gaussian_kernel(double sigma, int radius = -1);

/// 3x3 Sobel derivative kernels. sobel_x responds to horizontal gradients
/// (changes along x), sobel_y to vertical gradients.
[[nodiscard]] Kernel2D sobel_x_kernel();
[[nodiscard]] Kernel2D sobel_y_kernel();

/// The paper's Mask_x (3 rows x 5 columns): swept along the x axis to find
/// the anchor point on the steep (0,0)->(1,0) transition line. Positive
/// weights sit on the lower-left, negative on the upper-right, matching a
/// negatively sloped falling edge in sensor current.
[[nodiscard]] Kernel2D paper_mask_x();

/// The paper's Mask_y (5 rows x 3 columns): swept along the y axis to find
/// the anchor point on the shallow (0,0)->(0,1) transition line.
[[nodiscard]] Kernel2D paper_mask_y();

/// Sum of kernel entries (0 for the paper masks and Sobel by construction).
[[nodiscard]] double kernel_sum(const Kernel2D& k);

}  // namespace qvg
