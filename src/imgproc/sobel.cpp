#include "imgproc/sobel.hpp"

#include "imgproc/convolve.hpp"
#include "imgproc/kernel.hpp"

#include <cmath>

namespace qvg {

GradientField sobel_gradients(const GridD& image) {
  GradientField field;
  field.gx = correlate(image, sobel_x_kernel(), BorderMode::kReplicate);
  field.gy = correlate(image, sobel_y_kernel(), BorderMode::kReplicate);
  field.magnitude = GridD(image.width(), image.height());
  for (std::size_t i = 0; i < image.raw().size(); ++i)
    field.magnitude.raw()[i] =
        std::hypot(field.gx.raw()[i], field.gy.raw()[i]);
  return field;
}

}  // namespace qvg
