#include "imgproc/sobel.hpp"

#include "common/simd.hpp"
#include "imgproc/convolve.hpp"
#include "imgproc/kernel.hpp"

#include <cmath>

namespace qvg {

GradientField sobel_gradients(const GridD& image) {
  GradientField field;
  field.gx = correlate(image, sobel_x_kernel(), BorderMode::kReplicate);
  field.gy = correlate(image, sobel_y_kernel(), BorderMode::kReplicate);
  field.magnitude = GridD(image.width(), image.height());

  const double* gx = field.gx.raw().data();
  const double* gy = field.gy.raw().data();
  double* mag = field.magnitude.raw().data();
  const std::size_t n = image.raw().size();
  constexpr std::size_t kLanes = simd::VecD::kLanes;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const simd::VecD vx = simd::VecD::load(gx + i);
    const simd::VecD vy = simd::VecD::load(gy + i);
    simd::sqrt(vx * vx + vy * vy).store(mag + i);
  }
  for (; i < n; ++i) mag[i] = std::sqrt(gx[i] * gx[i] + gy[i] * gy[i]);
  return field;
}

GradientField sobel_gradients_reference(const GridD& image) {
  GradientField field;
  field.gx = correlate_reference(image, sobel_x_kernel(), BorderMode::kReplicate);
  field.gy = correlate_reference(image, sobel_y_kernel(), BorderMode::kReplicate);
  field.magnitude = GridD(image.width(), image.height());
  for (std::size_t i = 0; i < image.raw().size(); ++i)
    field.magnitude.raw()[i] =
        std::hypot(field.gx.raw()[i], field.gy.raw()[i]);
  return field;
}

}  // namespace qvg
