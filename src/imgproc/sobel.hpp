// Sobel gradients: magnitude and direction fields used by Canny.
//
// The production magnitude is sqrt(gx^2 + gy^2) evaluated lane-parallel
// (simd::VecD with an identical scalar tail); sobel_gradients_reference
// keeps the original std::hypot form as the exact-path ablation. The two
// agree to a small ULP bound (hypot is correctly rounded; the sqrt form
// rounds the two squarings and the sum first) — the bound is pinned by the
// sobel equivalence test, and gx/gy are bit-identical between the two.
// Overflow/underflow of the squared form is irrelevant at CSD magnitudes
// (normalized O(1) data), which is why the cheaper form is safe here.
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

struct GradientField {
  GridD gx;         // d/dx
  GridD gy;         // d/dy
  GridD magnitude;  // sqrt(gx^2 + gy^2)
};

[[nodiscard]] GradientField sobel_gradients(const GridD& image);

/// Exact-path ablation: std::hypot magnitude (pre-SIMD behaviour). gx/gy are
/// bit-identical to sobel_gradients; magnitude within the documented ULP
/// bound (see tests/imgproc_simd_test.cpp).
[[nodiscard]] GradientField sobel_gradients_reference(const GridD& image);

}  // namespace qvg
