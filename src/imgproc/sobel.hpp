// Sobel gradients: magnitude and direction fields used by Canny.
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

struct GradientField {
  GridD gx;         // d/dx
  GridD gy;         // d/dy
  GridD magnitude;  // sqrt(gx^2 + gy^2)
};

[[nodiscard]] GradientField sobel_gradients(const GridD& image);

}  // namespace qvg
