// Standard Hough line transform over a binary edge map, with peak extraction
// and non-maximum suppression in the accumulator. This is the line-finding
// stage of the paper's baseline method.
#pragma once

#include "common/geometry.hpp"
#include "grid/grid2d.hpp"

#include <optional>
#include <vector>

namespace qvg {

/// A line in normal (Hesse) form: rho = x cos(theta) + y sin(theta).
struct HoughLine {
  double rho = 0.0;    // signed distance from origin, in pixels
  double theta = 0.0;  // radians in [0, pi)
  int votes = 0;

  /// Slope dy/dx of the line; nullopt for (near-)vertical lines.
  [[nodiscard]] std::optional<double> slope() const;
  /// y-intercept; nullopt for (near-)vertical lines.
  [[nodiscard]] std::optional<double> intercept() const;
};

/// How hough_accumulate walks (edge point, theta) space.
enum class HoughAccumulateMode {
  /// Cache-blocked production path: edge points bucketed into spatial tiles,
  /// theta swept SIMD-wide per point within each theta-parallel chunk, so
  /// the active accumulator slab (chunk columns x one tile's rho window)
  /// stays in L1/L2 instead of streaming the whole rho range per point.
  /// Integer votes are order-independent: counts are identical to kFlat.
  kBlocked,
  /// The PR 1 theta-parallel point-major loop, kept as the ablation
  /// reference (also the bench harness's before/after baseline).
  kFlat,
};

struct HoughOptions {
  double rho_resolution = 1.0;                  // pixels per accumulator bin
  double theta_resolution_deg = 1.0;            // degrees per accumulator bin
  int votes_threshold = 0;                      // 0 -> adaptive (fraction of max)
  double adaptive_threshold_fraction = 0.35;     // used when votes_threshold == 0
  int max_lines = 8;
  /// Peak NMS window half-sizes in accumulator bins.
  int nms_rho_radius = 4;
  int nms_theta_radius = 4;
  HoughAccumulateMode accumulate_mode = HoughAccumulateMode::kBlocked;
};

/// Accumulator plus metadata, exposed for tests and diagnostics.
struct HoughAccumulator {
  Grid2D<int> votes;   // (theta_bin, rho_bin)
  double rho_min = 0.0;
  double rho_step = 1.0;
  double theta_step = 0.0;

  [[nodiscard]] double rho_of_bin(std::size_t bin) const {
    return rho_min + rho_step * static_cast<double>(bin);
  }
  [[nodiscard]] double theta_of_bin(std::size_t bin) const {
    return theta_step * static_cast<double>(bin);
  }
};

/// Vote all edge pixels (value != 0) into the accumulator.
[[nodiscard]] HoughAccumulator hough_accumulate(const GridU8& edges,
                                                const HoughOptions& options = {});

/// Extract up to max_lines peaks with NMS, sorted by votes descending.
[[nodiscard]] std::vector<HoughLine> hough_peaks(const HoughAccumulator& acc,
                                                 const HoughOptions& options = {});

/// Convenience: accumulate + peak extraction.
[[nodiscard]] std::vector<HoughLine> hough_lines(const GridU8& edges,
                                                 const HoughOptions& options = {});

}  // namespace qvg
