// Canny edge detector: Gaussian smoothing, Sobel gradients, non-maximum
// suppression, double-threshold hysteresis. This is the edge-detection stage
// of the paper's baseline (OpenCV Canny in the original evaluation).
//
// Hot-path form (PR 7): the Gaussian and Sobel stages run the SIMD
// convolution interiors, the gradient magnitude is the lane-parallel sqrt
// form, and NMS classifies gradient directions with a branch-light tangent
// comparison ladder (canny_sector) instead of a per-pixel atan2.
// canny_reference keeps the pre-SIMD pipeline (hypot magnitude + atan2
// sectors) as the exact-path ablation; sectors agree with the reference on
// every non-boundary gradient (pinned exhaustively on an integer gradient
// sweep — only directions within rounding distance of the 22.5-degree
// sector boundaries, a measure-zero set the sweep proves empty for real
// Sobel outputs, may differ), and edge maps are compared in the kernel
// equivalence tests and the bench harness.
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

struct CannyOptions {
  double gaussian_sigma = 1.4;
  /// Thresholds on the gradient magnitude expressed as quantiles of the
  /// nonzero magnitude distribution, so the detector adapts to the CSD's
  /// contrast (OpenCV users typically hand-tune absolute values instead).
  double low_quantile = 0.80;
  double high_quantile = 0.92;
  /// Absolute thresholds override the quantiles when >= 0.
  double low_threshold = -1.0;
  double high_threshold = -1.0;
};

/// Returns a binary edge map (1 = edge pixel, 0 = background).
[[nodiscard]] GridU8 canny(const GridD& image, const CannyOptions& options = {});

/// Pre-SIMD ablation pipeline: reference convolutions, hypot magnitude,
/// atan2 sector classification. Same hysteresis.
[[nodiscard]] GridU8 canny_reference(const GridD& image,
                                     const CannyOptions& options = {});

/// NMS direction sector of a gradient, modulo 180 degrees: 0 = horizontal
/// (neighbors +-x), 1 = diagonal '/', 2 = vertical, 3 = diagonal '\'.
/// Branch-light tangent comparison ladder; no trigonometry.
[[nodiscard]] int canny_sector(double gx, double gy) noexcept;

/// atan2-based sector classification (the pre-PR 7 implementation), kept as
/// the oracle for the exhaustive sector-equivalence sweep.
[[nodiscard]] int canny_sector_reference(double gx, double gy);

}  // namespace qvg
