// Canny edge detector: Gaussian smoothing, Sobel gradients, non-maximum
// suppression, double-threshold hysteresis. This is the edge-detection stage
// of the paper's baseline (OpenCV Canny in the original evaluation).
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

struct CannyOptions {
  double gaussian_sigma = 1.4;
  /// Thresholds on the gradient magnitude expressed as quantiles of the
  /// nonzero magnitude distribution, so the detector adapts to the CSD's
  /// contrast (OpenCV users typically hand-tune absolute values instead).
  double low_quantile = 0.80;
  double high_quantile = 0.92;
  /// Absolute thresholds override the quantiles when >= 0.
  double low_threshold = -1.0;
  double high_threshold = -1.0;
};

/// Returns a binary edge map (1 = edge pixel, 0 = background).
[[nodiscard]] GridU8 canny(const GridD& image, const CannyOptions& options = {});

}  // namespace qvg
