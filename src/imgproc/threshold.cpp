#include "imgproc/threshold.hpp"

#include "common/assert.hpp"

#include <algorithm>
#include <array>

namespace qvg {

double otsu_threshold(const GridD& image) {
  QVG_EXPECTS(!image.empty());
  const auto [lo_it, hi_it] =
      std::minmax_element(image.raw().begin(), image.raw().end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  if (hi - lo < 1e-300) return lo;

  constexpr int kBins = 256;
  std::array<int, kBins> hist{};
  const double scale = (kBins - 1) / (hi - lo);
  for (double v : image.raw()) {
    auto bin = static_cast<int>((v - lo) * scale);
    bin = std::clamp(bin, 0, kBins - 1);
    ++hist[static_cast<std::size_t>(bin)];
  }

  const double total = static_cast<double>(image.raw().size());
  double sum_all = 0.0;
  for (int b = 0; b < kBins; ++b) sum_all += b * hist[static_cast<std::size_t>(b)];

  double sum_bg = 0.0;
  double weight_bg = 0.0;
  double best_var = -1.0;
  int best_bin = 0;
  for (int b = 0; b < kBins; ++b) {
    weight_bg += hist[static_cast<std::size_t>(b)];
    if (weight_bg == 0.0) continue;
    const double weight_fg = total - weight_bg;
    if (weight_fg == 0.0) break;
    sum_bg += b * hist[static_cast<std::size_t>(b)];
    const double mean_bg = sum_bg / weight_bg;
    const double mean_fg = (sum_all - sum_bg) / weight_fg;
    const double between =
        weight_bg * weight_fg * (mean_bg - mean_fg) * (mean_bg - mean_fg);
    if (between > best_var) {
      best_var = between;
      best_bin = b;
    }
  }
  return lo + (best_bin + 0.5) / scale;
}

GridU8 binarize(const GridD& image, double threshold) {
  GridU8 out(image.width(), image.height(), 0);
  for (std::size_t i = 0; i < image.raw().size(); ++i)
    out.raw()[i] = image.raw()[i] > threshold ? 1 : 0;
  return out;
}

}  // namespace qvg
