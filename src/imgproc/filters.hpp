// Smoothing filters.
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

/// Separable Gaussian blur.
[[nodiscard]] GridD gaussian_blur(const GridD& image, double sigma);

/// Median filter with a square window of given radius (window side 2r+1).
[[nodiscard]] GridD median_filter(const GridD& image, int radius);

/// Box blur with a square window of given radius.
[[nodiscard]] GridD box_blur(const GridD& image, int radius);

/// Normalize image values to [0, 1] (constant images map to all zeros).
[[nodiscard]] GridD normalize01(const GridD& image);

}  // namespace qvg
