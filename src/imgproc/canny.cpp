#include "imgproc/canny.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/sobel.hpp"
#include "linalg/stats.hpp"

#include <cmath>
#include <numbers>
#include <vector>

namespace qvg {

namespace {

/// NMS neighbor offsets along the gradient, indexed by sector.
constexpr int kSectorNeighbors[4][2][2] = {
    {{1, 0}, {-1, 0}},    // 0: horizontal
    {{1, 1}, {-1, -1}},   // 1: diagonal /
    {{0, 1}, {0, -1}},    // 2: vertical
    {{-1, 1}, {1, -1}},   // 3: diagonal \.
};

}  // namespace

int canny_sector(double gx, double gy) noexcept {
  // Direction is modulo 180 degrees: fold into the gy >= 0 half-plane (a
  // 180-degree rotation keeps the sector). The sector boundaries are at
  // 22.5 + 45k degrees; tan(22.5 deg) = sqrt(2) - 1 and tan(67.5 deg) =
  // sqrt(2) + 1 exactly, so two multiplies and two compares classify the
  // angle without atan2. Exact-boundary ties keep the atan2 convention
  // (deg in [22.5, 67.5) -> '/', [67.5, 112.5) -> vertical, ...): the left
  // edge of each sector belongs to it, which for the folded ladder means a
  // tie resolves by the sign of gx.
  if (gy < 0.0) {
    gx = -gx;
    gy = -gy;
  }
  if (gy == 0.0) return 0;  // includes the zero gradient: atan2(0, x) sector
  constexpr double kTan22 = std::numbers::sqrt2 - 1.0;
  constexpr double kTan67 = std::numbers::sqrt2 + 1.0;
  const double ax = gx < 0.0 ? -gx : gx;
  const double t22 = kTan22 * ax;
  const double t67 = kTan67 * ax;
  if (gy < t22 || (gy == t22 && gx < 0.0)) return 0;
  if (gy < t67 || (gy == t67 && gx < 0.0)) return gx > 0.0 ? 1 : 3;
  return 2;
}

int canny_sector_reference(double gx, double gy) {
  const double angle = std::atan2(gy, gx);  // [-pi, pi]
  double deg = angle * 180.0 / std::numbers::pi;
  if (deg < 0) deg += 180.0;  // direction is modulo 180
  if (deg < 22.5 || deg >= 157.5) return 0;  // horizontal
  if (deg < 67.5) return 1;                  // diagonal /
  if (deg < 112.5) return 2;                 // vertical
  return 3;                                  // diagonal \.
}

namespace {

/// Shared back half of the detector: threshold resolution, NMS, hysteresis.
/// `reference` selects the atan2 sector oracle instead of the ladder.
GridU8 canny_impl(const GridD& image, const CannyOptions& opt,
                  const GradientField& grad, bool reference) {
  // Resolve thresholds.
  double low = opt.low_threshold;
  double high = opt.high_threshold;
  if (low < 0.0 || high < 0.0) {
    std::vector<double> nonzero;
    nonzero.reserve(grad.magnitude.raw().size());
    for (double m : grad.magnitude.raw())
      if (m > 1e-12) nonzero.push_back(m);
    if (nonzero.empty()) return GridU8(image.width(), image.height(), 0);
    if (low < 0.0) low = percentile(nonzero, opt.low_quantile * 100.0);
    if (high < 0.0) high = percentile(nonzero, opt.high_quantile * 100.0);
  }
  QVG_ENSURES(high >= low);

  const auto w = image.width();
  const auto h = image.height();

  // Non-maximum suppression. Pure per-pixel function of the gradient field,
  // so the row-parallel scan is bit-identical to the serial one.
  GridD thinned(w, h, 0.0);
  parallel_for_rows(h, [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const double m = grad.magnitude(x, y);
        if (m < low) continue;
        const int sector = reference
                               ? canny_sector_reference(grad.gx(x, y),
                                                        grad.gy(x, y))
                               : canny_sector(grad.gx(x, y), grad.gy(x, y));
        const auto& n = kSectorNeighbors[sector];
        const double m1 = grad.magnitude.clamped(
            static_cast<std::ptrdiff_t>(x) + n[0][0],
            static_cast<std::ptrdiff_t>(y) + n[0][1]);
        const double m2 = grad.magnitude.clamped(
            static_cast<std::ptrdiff_t>(x) + n[1][0],
            static_cast<std::ptrdiff_t>(y) + n[1][1]);
        if (m >= m1 && m >= m2) thinned(x, y) = m;
      }
    }
  });

  // Hysteresis: strong pixels seed a flood fill through weak pixels.
  GridU8 edges(w, h, 0);
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      if (thinned(x, y) >= high) {
        edges(x, y) = 1;
        stack.emplace_back(x, y);
      }

  while (!stack.empty()) {
    const auto [cx, cy] = stack.back();
    stack.pop_back();
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const auto nx = static_cast<std::ptrdiff_t>(cx) + dx;
        const auto ny = static_cast<std::ptrdiff_t>(cy) + dy;
        if (!edges.in_bounds(nx, ny)) continue;
        const auto ux = static_cast<std::size_t>(nx);
        const auto uy = static_cast<std::size_t>(ny);
        if (edges(ux, uy) == 0 && thinned(ux, uy) >= low) {
          edges(ux, uy) = 1;
          stack.emplace_back(ux, uy);
        }
      }
    }
  }
  return edges;
}

}  // namespace

GridU8 canny(const GridD& image, const CannyOptions& opt) {
  QVG_EXPECTS(image.width() >= 3 && image.height() >= 3);
  const GridD smoothed = gaussian_blur(image, opt.gaussian_sigma);
  const GradientField grad = sobel_gradients(smoothed);
  return canny_impl(image, opt, grad, /*reference=*/false);
}

GridU8 canny_reference(const GridD& image, const CannyOptions& opt) {
  QVG_EXPECTS(image.width() >= 3 && image.height() >= 3);
  // gaussian_blur routes through correlate_separable (SIMD), which is
  // bit-identical to the reference separable pass — the ablation's exactness
  // lives in the hypot magnitude and atan2 sectors.
  const GridD smoothed = gaussian_blur(image, opt.gaussian_sigma);
  const GradientField grad = sobel_gradients_reference(smoothed);
  return canny_impl(image, opt, grad, /*reference=*/true);
}

}  // namespace qvg
