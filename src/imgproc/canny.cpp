#include "imgproc/canny.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/sobel.hpp"
#include "linalg/stats.hpp"

#include <cmath>
#include <numbers>
#include <vector>

namespace qvg {

namespace {

/// Quantize the gradient direction into one of 4 sectors (0°, 45°, 90°, 135°)
/// and return the two neighbor offsets along the gradient.
std::pair<std::pair<int, int>, std::pair<int, int>> gradient_neighbors(
    double gx, double gy) {
  const double angle = std::atan2(gy, gx);  // [-pi, pi]
  double deg = angle * 180.0 / std::numbers::pi;
  if (deg < 0) deg += 180.0;  // direction is modulo 180
  if (deg < 22.5 || deg >= 157.5) return {{1, 0}, {-1, 0}};     // horizontal
  if (deg < 67.5) return {{1, 1}, {-1, -1}};                    // diagonal /
  if (deg < 112.5) return {{0, 1}, {0, -1}};                    // vertical
  return {{-1, 1}, {1, -1}};                                    // diagonal \.
}

}  // namespace

GridU8 canny(const GridD& image, const CannyOptions& opt) {
  QVG_EXPECTS(image.width() >= 3 && image.height() >= 3);

  const GridD smoothed = gaussian_blur(image, opt.gaussian_sigma);
  const GradientField grad = sobel_gradients(smoothed);

  // Resolve thresholds.
  double low = opt.low_threshold;
  double high = opt.high_threshold;
  if (low < 0.0 || high < 0.0) {
    std::vector<double> nonzero;
    nonzero.reserve(grad.magnitude.raw().size());
    for (double m : grad.magnitude.raw())
      if (m > 1e-12) nonzero.push_back(m);
    if (nonzero.empty()) return GridU8(image.width(), image.height(), 0);
    if (low < 0.0) low = percentile(nonzero, opt.low_quantile * 100.0);
    if (high < 0.0) high = percentile(nonzero, opt.high_quantile * 100.0);
  }
  QVG_ENSURES(high >= low);

  const auto w = image.width();
  const auto h = image.height();

  // Non-maximum suppression. Pure per-pixel function of the gradient field,
  // so the row-parallel scan is bit-identical to the serial one.
  GridD thinned(w, h, 0.0);
  parallel_for_rows(h, [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        const double m = grad.magnitude(x, y);
        if (m < low) continue;
        const auto [n1, n2] = gradient_neighbors(grad.gx(x, y), grad.gy(x, y));
        const double m1 = grad.magnitude.clamped(
            static_cast<std::ptrdiff_t>(x) + n1.first,
            static_cast<std::ptrdiff_t>(y) + n1.second);
        const double m2 = grad.magnitude.clamped(
            static_cast<std::ptrdiff_t>(x) + n2.first,
            static_cast<std::ptrdiff_t>(y) + n2.second);
        if (m >= m1 && m >= m2) thinned(x, y) = m;
      }
    }
  });

  // Hysteresis: strong pixels seed a flood fill through weak pixels.
  GridU8 edges(w, h, 0);
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      if (thinned(x, y) >= high) {
        edges(x, y) = 1;
        stack.emplace_back(x, y);
      }

  while (!stack.empty()) {
    const auto [cx, cy] = stack.back();
    stack.pop_back();
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const auto nx = static_cast<std::ptrdiff_t>(cx) + dx;
        const auto ny = static_cast<std::ptrdiff_t>(cy) + dy;
        if (!edges.in_bounds(nx, ny)) continue;
        const auto ux = static_cast<std::size_t>(nx);
        const auto uy = static_cast<std::size_t>(ny);
        if (edges(ux, uy) == 0 && thinned(ux, uy) >= low) {
          edges(ux, uy) = 1;
          stack.emplace_back(ux, uy);
        }
      }
    }
  }
  return edges;
}

}  // namespace qvg
