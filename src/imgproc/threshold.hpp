// Global thresholding utilities.
#pragma once

#include "grid/grid2d.hpp"

namespace qvg {

/// Otsu's method: threshold maximizing between-class variance over a
/// 256-bin histogram of the (min..max normalized) image. Returns the
/// threshold in original image units.
[[nodiscard]] double otsu_threshold(const GridD& image);

/// Binarize: 1 where image > threshold else 0.
[[nodiscard]] GridU8 binarize(const GridD& image, double threshold);

}  // namespace qvg
