#include "imgproc/convolve.hpp"

#include "common/assert.hpp"

namespace qvg {

namespace {

double sample(const GridD& image, std::ptrdiff_t x, std::ptrdiff_t y,
              BorderMode border) {
  if (image.in_bounds(x, y))
    return image(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
  switch (border) {
    case BorderMode::kZero:
      return 0.0;
    case BorderMode::kReplicate:
      return image.clamped(x, y);
    case BorderMode::kReflect: {
      const auto w = static_cast<std::ptrdiff_t>(image.width());
      const auto h = static_cast<std::ptrdiff_t>(image.height());
      auto reflect = [](std::ptrdiff_t v, std::ptrdiff_t n) {
        // Reflect-101 style without repeating the border pixel.
        while (v < 0 || v >= n) {
          if (v < 0) v = -v;
          if (v >= n) v = 2 * (n - 1) - v;
        }
        return v;
      };
      return image(static_cast<std::size_t>(reflect(x, w)),
                   static_cast<std::size_t>(reflect(y, h)));
    }
  }
  return 0.0;
}

}  // namespace

GridD correlate(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  QVG_EXPECTS(!image.empty());
  QVG_EXPECTS(!kernel.empty());
  const auto kw = static_cast<std::ptrdiff_t>(kernel.width());
  const auto kh = static_cast<std::ptrdiff_t>(kernel.height());
  const std::ptrdiff_t ax = kw / 2;  // anchor: kernel center
  const std::ptrdiff_t ay = kh / 2;

  GridD out(image.width(), image.height());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      double acc = 0.0;
      for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
        for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
          const double w = kernel(static_cast<std::size_t>(kx),
                                  static_cast<std::size_t>(ky));
          if (w == 0.0) continue;
          acc += w * sample(image, static_cast<std::ptrdiff_t>(x) + kx - ax,
                            static_cast<std::ptrdiff_t>(y) + ky - ay, border);
        }
      }
      out(x, y) = acc;
    }
  }
  return out;
}

GridD convolve(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  // Convolution = correlation with a doubly flipped kernel.
  Kernel2D flipped(kernel.width(), kernel.height());
  for (std::size_t y = 0; y < kernel.height(); ++y)
    for (std::size_t x = 0; x < kernel.width(); ++x)
      flipped(x, y) = kernel(kernel.width() - 1 - x, kernel.height() - 1 - y);
  return correlate(image, flipped, border);
}

GridD correlate_separable(const GridD& image, const std::vector<double>& taps_x,
                          const std::vector<double>& taps_y, BorderMode border) {
  QVG_EXPECTS(!taps_x.empty() && !taps_y.empty());
  const auto rx = static_cast<std::ptrdiff_t>(taps_x.size()) / 2;
  const auto ry = static_cast<std::ptrdiff_t>(taps_y.size()) / 2;

  GridD tmp(image.width(), image.height());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      double acc = 0.0;
      for (std::size_t k = 0; k < taps_x.size(); ++k) {
        acc += taps_x[k] * sample(image,
                                  static_cast<std::ptrdiff_t>(x) +
                                      static_cast<std::ptrdiff_t>(k) - rx,
                                  static_cast<std::ptrdiff_t>(y), border);
      }
      tmp(x, y) = acc;
    }
  }
  GridD out(image.width(), image.height());
  for (std::size_t y = 0; y < image.height(); ++y) {
    for (std::size_t x = 0; x < image.width(); ++x) {
      double acc = 0.0;
      for (std::size_t k = 0; k < taps_y.size(); ++k) {
        acc += taps_y[k] * sample(tmp, static_cast<std::ptrdiff_t>(x),
                                  static_cast<std::ptrdiff_t>(y) +
                                      static_cast<std::ptrdiff_t>(k) - ry,
                                  border);
      }
      out(x, y) = acc;
    }
  }
  return out;
}

}  // namespace qvg
