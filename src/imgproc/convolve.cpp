#include "imgproc/convolve.hpp"

#include "common/assert.hpp"
#include "common/simd.hpp"
#include "common/thread_pool.hpp"

namespace qvg {

InteriorSpan kernel_interior_span(std::ptrdiff_t extent, std::ptrdiff_t anchor,
                                  std::ptrdiff_t ksize) noexcept {
  // Position p is interior iff the whole window fits: p - anchor >= 0 and
  // p - anchor + ksize <= extent. Kernels larger than the image produce an
  // empty span (every pixel border-handled).
  InteriorSpan span;
  span.lo = anchor;
  span.hi = extent - (ksize - 1 - anchor);
  if (span.lo > extent) span.lo = extent;
  if (span.hi < span.lo) span.hi = span.lo;
  return span;
}

namespace {

double sample(const GridD& image, std::ptrdiff_t x, std::ptrdiff_t y,
              BorderMode border) {
  if (image.in_bounds(x, y))
    return image(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
  switch (border) {
    case BorderMode::kZero:
      return 0.0;
    case BorderMode::kReplicate:
      return image.clamped(x, y);
    case BorderMode::kReflect: {
      const auto w = static_cast<std::ptrdiff_t>(image.width());
      const auto h = static_cast<std::ptrdiff_t>(image.height());
      auto reflect = [](std::ptrdiff_t v, std::ptrdiff_t n) {
        // Reflect-101 style without repeating the border pixel.
        while (v < 0 || v >= n) {
          if (v < 0) v = -v;
          if (v >= n) v = 2 * (n - 1) - v;
        }
        return v;
      };
      return image(static_cast<std::size_t>(reflect(x, w)),
                   static_cast<std::size_t>(reflect(y, h)));
    }
  }
  return 0.0;
}

/// One nonzero kernel tap: offsets relative to the anchored output pixel.
struct Tap {
  std::ptrdiff_t dx;
  std::ptrdiff_t dy;
  double w;
};

/// Nonzero taps in the reference scan order (ky ascending, then kx), with
/// the optional double flip applied as an index view. Skipping zero weights
/// here matches the reference loop's per-tap `w == 0` skip for every pixel,
/// so accumulation sequences stay identical.
std::vector<Tap> collect_taps(const Kernel2D& kernel, bool flip,
                              std::ptrdiff_t ax, std::ptrdiff_t ay) {
  const auto kw = static_cast<std::ptrdiff_t>(kernel.width());
  const auto kh = static_cast<std::ptrdiff_t>(kernel.height());
  std::vector<Tap> taps;
  taps.reserve(kernel.raw().size());
  for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
    for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
      const std::ptrdiff_t sx = flip ? kw - 1 - kx : kx;
      const std::ptrdiff_t sy = flip ? kh - 1 - ky : ky;
      const double w = kernel(static_cast<std::size_t>(sx),
                              static_cast<std::size_t>(sy));
      if (w == 0.0) continue;
      taps.push_back({kx - ax, ky - ay, w});
    }
  }
  return taps;
}

/// Border-pixel accumulation through the boundary sampler, in tap order.
double sampled_pixel(const GridD& image, std::ptrdiff_t x, std::ptrdiff_t y,
                     const std::vector<Tap>& taps, BorderMode border) {
  double acc = 0.0;
  for (const Tap& t : taps) acc += t.w * sample(image, x + t.dx, y + t.dy, border);
  return acc;
}

/// Shared correlation core, SIMD interior. `flip` selects true convolution
/// (kernel mirrored in both axes) as an index view — no flipped copy is
/// materialized. Row-parallel: every output row is written by exactly one
/// chunk. Interior pixels (full window in bounds, via kernel_interior_span —
/// the one boundary-handling helper every path shares) run stride-1 over x,
/// VecD::kLanes outputs at a time, accumulating the unrolled taps in the
/// reference scan order; the scalar tail and the border columns/rows use the
/// same tap sequence, so every output pixel accumulates in exactly the
/// reference order and the result is bit-identical to correlate_reference on
/// all paths.
GridD correlate_simd(const GridD& image, const Kernel2D& kernel,
                     BorderMode border, bool flip) {
  QVG_EXPECTS(!image.empty());
  QVG_EXPECTS(!kernel.empty());
  const auto kw = static_cast<std::ptrdiff_t>(kernel.width());
  const auto kh = static_cast<std::ptrdiff_t>(kernel.height());
  const std::ptrdiff_t ax = kw / 2;  // anchor: kernel center
  const std::ptrdiff_t ay = kh / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());
  const std::vector<Tap> taps = collect_taps(kernel, flip, ax, ay);

  const auto [xlo, xhi] = kernel_interior_span(width, ax, kw);
  const auto [ylo, yhi] = kernel_interior_span(height, ay, kh);

  GridD out(image.width(), image.height());
  const double* src = image.raw().data();
  double* dst = out.raw().data();
  constexpr auto kLanes = static_cast<std::ptrdiff_t>(simd::VecD::kLanes);

  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t yu = y0; yu < y1; ++yu) {
      const auto y = static_cast<std::ptrdiff_t>(yu);
      double* out_row = dst + y * width;
      if (y < ylo || y >= yhi) {
        for (std::ptrdiff_t x = 0; x < width; ++x)
          out_row[x] = sampled_pixel(image, x, y, taps, border);
        continue;
      }
      for (std::ptrdiff_t x = 0; x < xlo; ++x)
        out_row[x] = sampled_pixel(image, x, y, taps, border);
      std::ptrdiff_t x = xlo;
      for (; x + kLanes <= xhi; x += kLanes) {
        simd::VecD acc = simd::VecD::zero();
        for (const Tap& t : taps)
          acc += simd::VecD::broadcast(t.w) *
                 simd::VecD::load(src + (y + t.dy) * width + x + t.dx);
        acc.store(out_row + x);
      }
      for (; x < xhi; ++x) {
        double acc = 0.0;
        for (const Tap& t : taps)
          acc += t.w * src[(y + t.dy) * width + x + t.dx];
        out_row[x] = acc;
      }
      for (x = xhi; x < width; ++x)
        out_row[x] = sampled_pixel(image, x, y, taps, border);
    }
  });
  return out;
}

/// The scalar reference core (pre-SIMD implementation, kept verbatim as the
/// equivalence ablation). Per-pixel interior test, same accumulation order.
GridD correlate_impl_reference(const GridD& image, const Kernel2D& kernel,
                               BorderMode border, bool flip) {
  QVG_EXPECTS(!image.empty());
  QVG_EXPECTS(!kernel.empty());
  const auto kw = static_cast<std::ptrdiff_t>(kernel.width());
  const auto kh = static_cast<std::ptrdiff_t>(kernel.height());
  const std::ptrdiff_t ax = kw / 2;  // anchor: kernel center
  const std::ptrdiff_t ay = kh / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());

  auto weight = [&](std::ptrdiff_t kx, std::ptrdiff_t ky) {
    if (flip) {
      kx = kw - 1 - kx;
      ky = kh - 1 - ky;
    }
    return kernel(static_cast<std::size_t>(kx), static_cast<std::size_t>(ky));
  };

  GridD out(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      const bool y_interior = sy - ay >= 0 && sy - ay + kh <= height;
      for (std::size_t x = 0; x < image.width(); ++x) {
        const auto sx = static_cast<std::ptrdiff_t>(x);
        double acc = 0.0;
        if (y_interior && sx - ax >= 0 && sx - ax + kw <= width) {
          for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
            for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
              const double w = weight(kx, ky);
              if (w == 0.0) continue;
              acc += w * image(static_cast<std::size_t>(sx + kx - ax),
                               static_cast<std::size_t>(sy + ky - ay));
            }
          }
        } else {
          for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
            for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
              const double w = weight(kx, ky);
              if (w == 0.0) continue;
              acc += w * sample(image, sx + kx - ax, sy + ky - ay, border);
            }
          }
        }
        out(x, y) = acc;
      }
    }
  });
  return out;
}

}  // namespace

GridD correlate(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  return correlate_simd(image, kernel, border, /*flip=*/false);
}

GridD convolve(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  // Convolution = correlation with a doubly flipped kernel, applied as an
  // index view instead of allocating and flipping a copy per call.
  return correlate_simd(image, kernel, border, /*flip=*/true);
}

GridD correlate_reference(const GridD& image, const Kernel2D& kernel,
                          BorderMode border) {
  return correlate_impl_reference(image, kernel, border, /*flip=*/false);
}

GridD convolve_reference(const GridD& image, const Kernel2D& kernel,
                         BorderMode border) {
  return correlate_impl_reference(image, kernel, border, /*flip=*/true);
}

GridD correlate_separable(const GridD& image, const std::vector<double>& taps_x,
                          const std::vector<double>& taps_y, BorderMode border) {
  QVG_EXPECTS(!image.empty());
  QVG_EXPECTS(!taps_x.empty() && !taps_y.empty());
  const auto nx = static_cast<std::ptrdiff_t>(taps_x.size());
  const auto ny = static_cast<std::ptrdiff_t>(taps_y.size());
  const std::ptrdiff_t rx = nx / 2;
  const std::ptrdiff_t ry = ny / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());
  const auto [xlo, xhi] = kernel_interior_span(width, rx, nx);
  const auto [ylo, yhi] = kernel_interior_span(height, ry, ny);
  constexpr auto kLanes = static_cast<std::ptrdiff_t>(simd::VecD::kLanes);

  // Horizontal pass: every row is y-interior; interior x runs stride-1,
  // kLanes outputs per step, taps accumulated in ascending order (identical
  // to the reference's per-pixel loop).
  GridD tmp(image.width(), image.height());
  {
    const double* src = image.raw().data();
    double* dst = tmp.raw().data();
    parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
      for (std::size_t yu = y0; yu < y1; ++yu) {
        const auto y = static_cast<std::ptrdiff_t>(yu);
        const double* src_row = src + y * width;
        double* out_row = dst + y * width;
        auto border_pixel = [&](std::ptrdiff_t x) {
          double acc = 0.0;
          for (std::ptrdiff_t k = 0; k < nx; ++k)
            acc += taps_x[static_cast<std::size_t>(k)] *
                   sample(image, x + k - rx, y, border);
          return acc;
        };
        for (std::ptrdiff_t x = 0; x < xlo; ++x) out_row[x] = border_pixel(x);
        std::ptrdiff_t x = xlo;
        for (; x + kLanes <= xhi; x += kLanes) {
          simd::VecD acc = simd::VecD::zero();
          for (std::ptrdiff_t k = 0; k < nx; ++k)
            acc += simd::VecD::broadcast(taps_x[static_cast<std::size_t>(k)]) *
                   simd::VecD::load(src_row + x + k - rx);
          acc.store(out_row + x);
        }
        for (; x < xhi; ++x) {
          double acc = 0.0;
          for (std::ptrdiff_t k = 0; k < nx; ++k)
            acc += taps_x[static_cast<std::size_t>(k)] * src_row[x + k - rx];
          out_row[x] = acc;
        }
        for (x = xhi; x < width; ++x) out_row[x] = border_pixel(x);
      }
    });
  }

  // Vertical pass: interior rows vectorize across the whole width (loads are
  // contiguous within each tap row); border rows go through the sampler.
  GridD out(image.width(), image.height());
  {
    const double* src = tmp.raw().data();
    double* dst = out.raw().data();
    parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
      for (std::size_t yu = y0; yu < y1; ++yu) {
        const auto y = static_cast<std::ptrdiff_t>(yu);
        double* out_row = dst + y * width;
        if (y < ylo || y >= yhi) {
          for (std::ptrdiff_t x = 0; x < width; ++x) {
            double acc = 0.0;
            for (std::ptrdiff_t k = 0; k < ny; ++k)
              acc += taps_y[static_cast<std::size_t>(k)] *
                     sample(tmp, x, y + k - ry, border);
            out_row[x] = acc;
          }
          continue;
        }
        std::ptrdiff_t x = 0;
        for (; x + kLanes <= width; x += kLanes) {
          simd::VecD acc = simd::VecD::zero();
          for (std::ptrdiff_t k = 0; k < ny; ++k)
            acc += simd::VecD::broadcast(taps_y[static_cast<std::size_t>(k)]) *
                   simd::VecD::load(src + (y + k - ry) * width + x);
          acc.store(out_row + x);
        }
        for (; x < width; ++x) {
          double acc = 0.0;
          for (std::ptrdiff_t k = 0; k < ny; ++k)
            acc += taps_y[static_cast<std::size_t>(k)] * src[(y + k - ry) * width + x];
          out_row[x] = acc;
        }
      }
    });
  }
  return out;
}

GridD correlate_separable_reference(const GridD& image,
                                    const std::vector<double>& taps_x,
                                    const std::vector<double>& taps_y,
                                    BorderMode border) {
  QVG_EXPECTS(!taps_x.empty() && !taps_y.empty());
  const auto rx = static_cast<std::ptrdiff_t>(taps_x.size()) / 2;
  const auto ry = static_cast<std::ptrdiff_t>(taps_y.size()) / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());

  GridD tmp(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      for (std::size_t x = 0; x < image.width(); ++x) {
        const auto sx = static_cast<std::ptrdiff_t>(x);
        double acc = 0.0;
        if (sx - rx >= 0 &&
            sx - rx + static_cast<std::ptrdiff_t>(taps_x.size()) <= width) {
          for (std::size_t k = 0; k < taps_x.size(); ++k)
            acc += taps_x[k] *
                   image(static_cast<std::size_t>(
                             sx + static_cast<std::ptrdiff_t>(k) - rx),
                         y);
        } else {
          for (std::size_t k = 0; k < taps_x.size(); ++k)
            acc += taps_x[k] *
                   sample(image, sx + static_cast<std::ptrdiff_t>(k) - rx, sy,
                          border);
        }
        tmp(x, y) = acc;
      }
    }
  });

  GridD out(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      const bool y_interior =
          sy - ry >= 0 &&
          sy - ry + static_cast<std::ptrdiff_t>(taps_y.size()) <= height;
      for (std::size_t x = 0; x < image.width(); ++x) {
        double acc = 0.0;
        if (y_interior) {
          for (std::size_t k = 0; k < taps_y.size(); ++k)
            acc += taps_y[k] *
                   tmp(x, static_cast<std::size_t>(
                              sy + static_cast<std::ptrdiff_t>(k) - ry));
        } else {
          for (std::size_t k = 0; k < taps_y.size(); ++k)
            acc += taps_y[k] *
                   sample(tmp, static_cast<std::ptrdiff_t>(x),
                          sy + static_cast<std::ptrdiff_t>(k) - ry, border);
        }
        out(x, y) = acc;
      }
    }
  });
  return out;
}

}  // namespace qvg
