#include "imgproc/convolve.hpp"

#include "common/assert.hpp"
#include "common/thread_pool.hpp"

namespace qvg {

namespace {

double sample(const GridD& image, std::ptrdiff_t x, std::ptrdiff_t y,
              BorderMode border) {
  if (image.in_bounds(x, y))
    return image(static_cast<std::size_t>(x), static_cast<std::size_t>(y));
  switch (border) {
    case BorderMode::kZero:
      return 0.0;
    case BorderMode::kReplicate:
      return image.clamped(x, y);
    case BorderMode::kReflect: {
      const auto w = static_cast<std::ptrdiff_t>(image.width());
      const auto h = static_cast<std::ptrdiff_t>(image.height());
      auto reflect = [](std::ptrdiff_t v, std::ptrdiff_t n) {
        // Reflect-101 style without repeating the border pixel.
        while (v < 0 || v >= n) {
          if (v < 0) v = -v;
          if (v >= n) v = 2 * (n - 1) - v;
        }
        return v;
      };
      return image(static_cast<std::size_t>(reflect(x, w)),
                   static_cast<std::size_t>(reflect(y, h)));
    }
  }
  return 0.0;
}

/// Shared correlation core. `flip` selects true convolution (kernel mirrored
/// in both axes) as a view — no flipped copy is materialized. Row-parallel:
/// every output row is written by exactly one chunk, and interior pixels
/// (full kernel window in bounds) skip the border-handling sampler. The
/// per-pixel accumulation order is identical on every path, so results are
/// bit-identical to the straightforward serial implementation.
GridD correlate_impl(const GridD& image, const Kernel2D& kernel,
                     BorderMode border, bool flip) {
  QVG_EXPECTS(!image.empty());
  QVG_EXPECTS(!kernel.empty());
  const auto kw = static_cast<std::ptrdiff_t>(kernel.width());
  const auto kh = static_cast<std::ptrdiff_t>(kernel.height());
  const std::ptrdiff_t ax = kw / 2;  // anchor: kernel center
  const std::ptrdiff_t ay = kh / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());

  auto weight = [&](std::ptrdiff_t kx, std::ptrdiff_t ky) {
    if (flip) {
      kx = kw - 1 - kx;
      ky = kh - 1 - ky;
    }
    return kernel(static_cast<std::size_t>(kx), static_cast<std::size_t>(ky));
  };

  GridD out(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      const bool y_interior = sy - ay >= 0 && sy - ay + kh <= height;
      for (std::size_t x = 0; x < image.width(); ++x) {
        const auto sx = static_cast<std::ptrdiff_t>(x);
        double acc = 0.0;
        if (y_interior && sx - ax >= 0 && sx - ax + kw <= width) {
          for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
            for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
              const double w = weight(kx, ky);
              if (w == 0.0) continue;
              acc += w * image(static_cast<std::size_t>(sx + kx - ax),
                               static_cast<std::size_t>(sy + ky - ay));
            }
          }
        } else {
          for (std::ptrdiff_t ky = 0; ky < kh; ++ky) {
            for (std::ptrdiff_t kx = 0; kx < kw; ++kx) {
              const double w = weight(kx, ky);
              if (w == 0.0) continue;
              acc += w * sample(image, sx + kx - ax, sy + ky - ay, border);
            }
          }
        }
        out(x, y) = acc;
      }
    }
  });
  return out;
}

}  // namespace

GridD correlate(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  return correlate_impl(image, kernel, border, /*flip=*/false);
}

GridD convolve(const GridD& image, const Kernel2D& kernel, BorderMode border) {
  // Convolution = correlation with a doubly flipped kernel, applied as an
  // index view instead of allocating and flipping a copy per call.
  return correlate_impl(image, kernel, border, /*flip=*/true);
}

GridD correlate_separable(const GridD& image, const std::vector<double>& taps_x,
                          const std::vector<double>& taps_y, BorderMode border) {
  QVG_EXPECTS(!taps_x.empty() && !taps_y.empty());
  const auto rx = static_cast<std::ptrdiff_t>(taps_x.size()) / 2;
  const auto ry = static_cast<std::ptrdiff_t>(taps_y.size()) / 2;
  const auto width = static_cast<std::ptrdiff_t>(image.width());
  const auto height = static_cast<std::ptrdiff_t>(image.height());

  GridD tmp(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      for (std::size_t x = 0; x < image.width(); ++x) {
        const auto sx = static_cast<std::ptrdiff_t>(x);
        double acc = 0.0;
        if (sx - rx >= 0 &&
            sx - rx + static_cast<std::ptrdiff_t>(taps_x.size()) <= width) {
          for (std::size_t k = 0; k < taps_x.size(); ++k)
            acc += taps_x[k] *
                   image(static_cast<std::size_t>(
                             sx + static_cast<std::ptrdiff_t>(k) - rx),
                         y);
        } else {
          for (std::size_t k = 0; k < taps_x.size(); ++k)
            acc += taps_x[k] *
                   sample(image, sx + static_cast<std::ptrdiff_t>(k) - rx, sy,
                          border);
        }
        tmp(x, y) = acc;
      }
    }
  });

  GridD out(image.width(), image.height());
  parallel_for_rows(image.height(), [&](std::size_t y0, std::size_t y1) {
    for (std::size_t y = y0; y < y1; ++y) {
      const auto sy = static_cast<std::ptrdiff_t>(y);
      const bool y_interior =
          sy - ry >= 0 &&
          sy - ry + static_cast<std::ptrdiff_t>(taps_y.size()) <= height;
      for (std::size_t x = 0; x < image.width(); ++x) {
        double acc = 0.0;
        if (y_interior) {
          for (std::size_t k = 0; k < taps_y.size(); ++k)
            acc += taps_y[k] *
                   tmp(x, static_cast<std::size_t>(
                              sy + static_cast<std::ptrdiff_t>(k) - ry));
        } else {
          for (std::size_t k = 0; k < taps_y.size(); ++k)
            acc += taps_y[k] *
                   sample(tmp, static_cast<std::ptrdiff_t>(x),
                          sy + static_cast<std::ptrdiff_t>(k) - ry, border);
        }
        out(x, y) = acc;
      }
    }
  });
  return out;
}

}  // namespace qvg
