// Reproduces the paper's Figure 7: the voltage configurations probed by the
// fast extraction on benchmark CSDs 6 and 10. Prints an ASCII map (probed
// pixels marked) and writes probe logs + diagrams to CSV/PGM files for
// plotting. The expected shape: points scattered tightly around the two
// transition lines, plus the anchor-preprocessing rows/columns near the
// lower-left.
#include "dataset/csd_io.hpp"
#include "dataset/qflow_synth.hpp"
#include "extraction/fast_extractor.hpp"

#include <iostream>
#include <vector>

namespace {

void render_probe_map(const qvg::QflowBenchmark& benchmark,
                      const qvg::FastExtractionResult& result) {
  using namespace qvg;
  const std::size_t n = benchmark.spec.pixels;
  // Downsample the probe map to at most 64x64 characters.
  const std::size_t cell = (n + 63) / 64;
  const std::size_t cells = (n + cell - 1) / cell;
  std::vector<std::vector<char>> map(cells, std::vector<char>(cells, '.'));
  for (const auto& probe : result.probe_log) {
    const std::size_t x = benchmark.csd.x_axis().nearest_index(probe.x) / cell;
    const std::size_t y = benchmark.csd.y_axis().nearest_index(probe.y) / cell;
    map[y][x] = '#';
  }
  // Print with y increasing upward (row 0 at the bottom).
  for (std::size_t row = cells; row-- > 0;) {
    for (std::size_t col = 0; col < cells; ++col) std::cout << map[row][col];
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  using namespace qvg;
  std::cout << "Figure 7 reproduction: data points probed by the fast "
               "extraction on CSDs 6 and 10\n\n";

  const auto specs = qflow_suite_specs();
  for (int index : {6, 10}) {
    const QflowBenchmark benchmark =
        build_qflow_benchmark(specs[static_cast<std::size_t>(index - 1)]);
    auto playback = make_playback(benchmark);
    const auto result = run_fast_extraction(*playback, benchmark.csd.x_axis(),
                                            benchmark.csd.y_axis());

    std::cout << "--- " << benchmark.name() << " ("
              << benchmark.spec.pixels << "x" << benchmark.spec.pixels
              << "): " << result.stats.unique_probes << " points probed ("
              << 100.0 * static_cast<double>(result.stats.unique_probes) /
                     static_cast<double>(benchmark.spec.pixels *
                                         benchmark.spec.pixels)
              << "%), extraction "
              << (result.status.ok() ? "succeeded" : "failed") << " ---\n";
    render_probe_map(benchmark, result);
    std::cout << '\n';

    // Artifacts for external plotting.
    const std::string stem = "fig7_" + benchmark.name();
    save_points_csv(result.probe_log, stem + "_probes.csv");
    save_csd_csv(benchmark.csd, stem + "_diagram.csv");
    save_csd_pgm(benchmark.csd, stem + "_diagram.pgm");
    std::cout << "wrote " << stem << "_probes.csv, " << stem
              << "_diagram.{csv,pgm}\n\n";
  }
  return 0;
}
