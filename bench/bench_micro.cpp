// Google-benchmark microbenchmarks of the implementation building blocks
// (DESIGN.md experiment E7): image pipeline stages, the charge-state solver,
// the feature gradient, and the piecewise fit.
//
// The BM_*Reference / BM_*Simd (and flat/blocked, reference/fast) pairs are
// the PR 7 scalar-vs-vector ablation for each touched kernel; both variants
// live in one binary because the references are runtime-callable, so a
// single run shows the per-kernel gap on the host CPU.
#include "device/charge_state.hpp"
#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/piecewise_fit.hpp"
#include "imgproc/canny.hpp"
#include "imgproc/convolve.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/hough.hpp"
#include "imgproc/kernel.hpp"
#include "imgproc/sobel.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace qvg;

GridD make_test_image(std::size_t n) {
  Rng rng(99);
  GridD image(n, n);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      image(x, y) = (x > n / 2 ? 0.2 : 0.8) + 0.05 * rng.normal();
  return image;
}

void BM_GaussianBlur(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(gaussian_blur(image, 1.4));
}
BENCHMARK(BM_GaussianBlur)->Arg(63)->Arg(100)->Arg(200);

void BM_Canny(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(canny(image));
}
BENCHMARK(BM_Canny)->Arg(63)->Arg(100)->Arg(200);

void BM_Hough(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const auto edges = canny(image);
  for (auto _ : state) benchmark::DoNotOptimize(hough_lines(edges));
}
BENCHMARK(BM_Hough)->Arg(63)->Arg(100)->Arg(200);

void BM_CorrelateReference(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const Kernel2D mask = paper_mask_x();
  for (auto _ : state)
    benchmark::DoNotOptimize(correlate_reference(image, mask));
}
BENCHMARK(BM_CorrelateReference)->Arg(100)->Arg(200);

void BM_CorrelateSimd(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const Kernel2D mask = paper_mask_x();
  for (auto _ : state) benchmark::DoNotOptimize(correlate(image, mask));
}
BENCHMARK(BM_CorrelateSimd)->Arg(100)->Arg(200);

void BM_SeparableReference(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const auto taps = gaussian_taps(1.4);
  for (auto _ : state)
    benchmark::DoNotOptimize(correlate_separable_reference(image, taps, taps));
}
BENCHMARK(BM_SeparableReference)->Arg(100)->Arg(200);

void BM_SeparableSimd(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const auto taps = gaussian_taps(1.4);
  for (auto _ : state)
    benchmark::DoNotOptimize(correlate_separable(image, taps, taps));
}
BENCHMARK(BM_SeparableSimd)->Arg(100)->Arg(200);

void BM_SobelReference(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sobel_gradients_reference(image));
}
BENCHMARK(BM_SobelReference)->Arg(100)->Arg(200);

void BM_SobelSimd(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sobel_gradients(image));
}
BENCHMARK(BM_SobelSimd)->Arg(100)->Arg(200);

void BM_CannyReference(benchmark::State& state) {
  // Pre-PR 7 pipeline: reference convolutions, hypot magnitude, atan2 NMS.
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(canny_reference(image));
}
BENCHMARK(BM_CannyReference)->Arg(100)->Arg(200);

void BM_HoughFlat(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const auto edges = canny(image);
  HoughOptions opt;
  opt.accumulate_mode = HoughAccumulateMode::kFlat;
  for (auto _ : state) benchmark::DoNotOptimize(hough_accumulate(edges, opt));
}
BENCHMARK(BM_HoughFlat)->Arg(100)->Arg(200);

void BM_HoughBlocked(benchmark::State& state) {
  const auto image = make_test_image(static_cast<std::size_t>(state.range(0)));
  const auto edges = canny(image);
  HoughOptions opt;
  opt.accumulate_mode = HoughAccumulateMode::kBlocked;
  for (auto _ : state) benchmark::DoNotOptimize(hough_accumulate(edges, opt));
}
BENCHMARK(BM_HoughBlocked)->Arg(100)->Arg(200);

void BM_SolverBranchAndBound(benchmark::State& state) {
  // SIMD completion-bound batches drive the pruning; compare against
  // BM_SolverFullEnumeration for the bound's total effect.
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto drives =
      device.model.dot_drives(std::vector<double>(params.n_dots, 0.03));
  IncrementalGroundStateSolver solver(device.model);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        solver.solve(drives, 4, nullptr, ExhaustiveStrategy::kBranchAndBound));
}
BENCHMARK(BM_SolverBranchAndBound)->Arg(5)->Arg(6)->Arg(7);

void BM_SolverFullEnumeration(benchmark::State& state) {
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto drives =
      device.model.dot_drives(std::vector<double>(params.n_dots, 0.03));
  IncrementalGroundStateSolver solver(device.model);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        solver.solve(drives, 4, nullptr, ExhaustiveStrategy::kFullEnumeration));
}
BENCHMARK(BM_SolverFullEnumeration)->Arg(5)->Arg(6)->Arg(7);

void BM_GreedyReference(benchmark::State& state) {
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto drives =
      device.model.dot_drives(std::vector<double>(params.n_dots, 0.03));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ground_state_greedy_reference(device.model, drives, 4));
}
BENCHMARK(BM_GreedyReference)->Arg(7)->Arg(9);

void BM_GreedyDelta(benchmark::State& state) {
  // Delta-ICM with the SIMD coupling-sum updates.
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto drives =
      device.model.dot_drives(std::vector<double>(params.n_dots, 0.03));
  for (auto _ : state)
    benchmark::DoNotOptimize(ground_state_greedy(device.model, drives, 4));
}
BENCHMARK(BM_GreedyDelta)->Arg(7)->Arg(9);

void BM_GroundState(benchmark::State& state) {
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const std::vector<double> voltages(params.n_dots, 0.03);
  for (auto _ : state)
    benchmark::DoNotOptimize(ground_state(device.model, voltages));
}
BENCHMARK(BM_GroundState)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8);

void BM_IdealCurrent(benchmark::State& state) {
  const auto device = build_dot_array(DotArrayParams{});
  auto sim = make_pair_simulator(device);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.ideal_current(0.02 + v, 0.03));
    v = v < 0.02 ? v + 1e-5 : 0.0;
  }
}
BENCHMARK(BM_IdealCurrent);

void BM_DenseRasterNaive(benchmark::State& state) {
  // Pre-optimization reference path: per-pixel allocations + full-recompute
  // exhaustive solver (the ablation baseline for BM_DenseRasterFast).
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto sim = make_pair_simulator(device);
  const auto axis = scan_axis(device, 100);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sim.evaluate_raster(axis, axis, {RasterEvalMode::kNaive, false}));
}
BENCHMARK(BM_DenseRasterNaive)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DenseRasterFast(benchmark::State& state) {
  // Incremental solver + warm starts + row-parallel batched evaluation.
  DotArrayParams params;
  params.n_dots = static_cast<std::size_t>(state.range(0));
  const auto device = build_dot_array(params);
  const auto sim = make_pair_simulator(device);
  const auto axis = scan_axis(device, 100);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim.evaluate_raster(axis, axis));
}
BENCHMARK(BM_DenseRasterFast)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_PiecewiseFit(benchmark::State& state) {
  // Synthetic points along a 2-piecewise path.
  std::vector<Pixel> points;
  const Pixel a{10, 48};
  const Pixel b{55, 10};
  const Point2 vertex{50.0, 40.0};
  for (int x = a.x; x <= static_cast<int>(vertex.x); x += 2)
    points.push_back({x, static_cast<int>(48 - 0.2 * (x - a.x))});
  for (int y = b.y; y <= static_cast<int>(vertex.y); y += 2)
    points.push_back({static_cast<int>(55 - 0.25 * (y - b.y)), y});
  for (auto _ : state)
    benchmark::DoNotOptimize(fit_piecewise_linear(points, a, b));
}
BENCHMARK(BM_PiecewiseFit);

void BM_FastExtractionLive(benchmark::State& state) {
  // Full pipeline against the live simulator (dwell zeroed: compute only).
  const auto device = build_dot_array(DotArrayParams{});
  for (auto _ : state) {
    auto sim = make_pair_simulator(device, 0, 7, /*dwell_seconds=*/0.0);
    const auto axis = scan_axis(device, 100);
    benchmark::DoNotOptimize(run_fast_extraction(sim, axis, axis));
  }
}
BENCHMARK(BM_FastExtractionLive)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
