// Open-loop multi-tenant load generator for the wire API (PR 8): drives a
// live ExtractionServer over real loopback sockets and measures the three
// numbers the serving layer is judged on —
//   1. submit -> first-progress-event latency (SSE subscription per job),
//   2. sustained jobs/sec through the HTTP + queue + engine stack,
//   3. fairness: per-tenant dispatch share vs configured weight under
//      saturation (weights 3/2/1 on a single-worker pool, sampled while
//      every tenant is still backlogged), plus load-shedding behaviour
//      (typed 503 rejections past a tenant's max_pending bound).
// The same scenarios are recorded as machine-readable JSON by bench_json
// (BENCH_PR8.json); this binary is the human-readable drill-down with
// percentiles and per-tenant tables.
// Usage: bench_server [jobs_per_tenant] (default 60).
#include "common/thread_pool.hpp"
#include "server/extraction_server.hpp"
#include "server/http_client.hpp"
#include "wire/json.hpp"
#include "wire/messages.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qvg;
using namespace qvg::server;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// The standard small job: 64px fast extraction on a jittered double dot —
/// sub-millisecond of engine work, so the serving overhead is visible.
wire::WireRequest small_request(const std::string& label) {
  wire::WireRequest r;
  r.method = ExtractionMethod::kFast;
  r.backend = wire::WireBackendKind::kDevice;
  r.device.params.n_dots = 2;
  r.device.params.cross_ratio = 0.25;
  r.device.params.jitter = 0.05;
  r.device.has_jitter = true;
  r.device.jitter_seed = 7;
  r.device.noise_seed = 123;
  r.device.pixels_per_axis = 64;
  r.device.white_noise_sigma = 0.02;
  r.label = label;
  return r;
}

std::string_view as_view(const std::vector<std::uint8_t>& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// POST a request; returns the HTTP status and (on 200) the job id.
int submit(std::uint16_t port, const wire::WireRequest& request,
           const std::string& query, std::size_t* job_id) {
  Result<ClientResponse> response = http_call(
      port, "POST", "/v1/jobs" + query, as_view(wire::encode(request)));
  if (!response.ok()) return -1;
  if (response.value().status == 200 && job_id != nullptr) {
    Result<wire::JsonValue> doc = wire::parse_json(response.value().body);
    if (doc.ok()) {
      if (const wire::JsonValue* job = doc.value().find("job"))
        *job_id = static_cast<std::size_t>(job->as_u64());
    }
  }
  return response.value().status;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct TenantSnapshot {
  std::size_t dispatched = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  double weight = 0.0;
};

/// Parse /v1/stats into {total completed, per-tenant rows}.
std::size_t poll_stats(std::uint16_t port,
                       std::vector<std::pair<std::string, TenantSnapshot>>* out) {
  Result<ClientResponse> response = http_call(port, "GET", "/v1/stats");
  if (!response.ok() || response.value().status != 200) return 0;
  Result<wire::JsonValue> doc = wire::parse_json(response.value().body);
  if (!doc.ok()) return 0;
  std::size_t completed = 0;
  if (const wire::JsonValue* c = doc.value().find("completed"))
    completed = static_cast<std::size_t>(c->as_u64());
  if (out != nullptr) {
    out->clear();
    if (const wire::JsonValue* tenants = doc.value().find("tenants")) {
      for (const wire::JsonValue& row : tenants->items()) {
        TenantSnapshot snap;
        std::string name;
        if (const wire::JsonValue* v = row.find("tenant")) name = v->as_string();
        if (const wire::JsonValue* v = row.find("dispatched"))
          snap.dispatched = static_cast<std::size_t>(v->as_u64());
        if (const wire::JsonValue* v = row.find("completed"))
          snap.completed = static_cast<std::size_t>(v->as_u64());
        if (const wire::JsonValue* v = row.find("rejected"))
          snap.rejected = static_cast<std::size_t>(v->as_u64());
        if (const wire::JsonValue* v = row.find("weight"))
          snap.weight = v->as_double();
        out->emplace_back(std::move(name), snap);
      }
    }
  }
  return completed;
}

// --- Scenario 1: submit -> first progress event / report latency ----------

void run_latency(int jobs) {
  ExtractionServer server;
  if (!server.start().ok()) return;
  // Warm up the engine caches and the accept path.
  for (int i = 0; i < 4; ++i) {
    std::size_t id = 0;
    (void)submit(server.port(), small_request("warmup"), "", &id);
    (void)http_call(server.port(), "GET",
                    "/v1/jobs/" + std::to_string(id) + "?wait=1");
  }

  std::vector<double> submit_us, first_event_us, report_us;
  for (int i = 0; i < jobs; ++i) {
    const Clock::time_point t0 = Clock::now();
    std::size_t id = 0;
    if (submit(server.port(), small_request("lat"), "", &id) != 200) continue;
    submit_us.push_back(us_since(t0));

    // The event log replays from the start, so subscribing after submit
    // still times the first *produced* event relative to the submit call.
    SseClient sse;
    if (sse.connect(server.port(), "/v1/jobs/" + std::to_string(id) + "/events")
            .ok()) {
      Result<std::optional<std::string>> event = sse.next_event();
      if (event.ok() && event.value().has_value())
        first_event_us.push_back(us_since(t0));
      sse.close();
    }

    Result<ClientResponse> report = http_call(
        server.port(), "GET", "/v1/jobs/" + std::to_string(id) + "?wait=1");
    if (report.ok() && report.value().status == 200)
      report_us.push_back(us_since(t0));
  }
  server.stop();

  std::printf("submit latency (%d jobs, default pool)\n", jobs);
  std::printf("  %-28s %10.1f %10.1f\n", "submit -> job id (us p50/p95)",
              percentile(submit_us, 0.5), percentile(submit_us, 0.95));
  std::printf("  %-28s %10.1f %10.1f\n", "submit -> 1st event (us)",
              percentile(first_event_us, 0.5), percentile(first_event_us, 0.95));
  std::printf("  %-28s %10.1f %10.1f\n", "submit -> report (us)",
              percentile(report_us, 0.5), percentile(report_us, 0.95));
}

// --- Scenario 2: sustained open-loop throughput ---------------------------

void run_throughput(int jobs) {
  ExtractionServer server;
  if (!server.start().ok()) return;
  const Clock::time_point t0 = Clock::now();
  int accepted = 0;
  for (int i = 0; i < jobs; ++i)
    if (submit(server.port(), small_request("tp"), "", nullptr) == 200)
      ++accepted;
  const double submit_seconds = us_since(t0) * 1e-6;
  server.queue().wait_all();
  const double total_seconds = us_since(t0) * 1e-6;
  server.stop();

  std::printf("sustained throughput (%d jobs, open loop)\n", jobs);
  std::printf("  %-28s %10.0f\n", "submit rate (jobs/s)",
              accepted / submit_seconds);
  std::printf("  %-28s %10.0f\n", "completed rate (jobs/s)",
              accepted / total_seconds);
}

// --- Scenario 3: weighted fairness under saturation -----------------------

void run_fairness(int jobs_per_tenant) {
  // A single-worker pool serialises dispatch, so the deficit-weighted order
  // is exactly observable; equal backlogs per tenant keep everyone
  // saturated until the heaviest tenant drains.
  ThreadPool pool(1);
  ServerOptions options;
  options.pool = &pool;
  ExtractionServer server(options);
  server.configure_tenant("alpha", {.weight = 3.0});
  server.configure_tenant("beta", {.weight = 2.0});
  server.configure_tenant("gamma", {.weight = 1.0});
  if (!server.start().ok()) return;

  const Clock::time_point t0 = Clock::now();
  for (int i = 0; i < jobs_per_tenant; ++i)
    for (const char* tenant : {"alpha", "beta", "gamma"})
      (void)submit(server.port(), small_request(tenant),
                   std::string("?tenant=") + tenant, nullptr);

  // Sample dispatch shares while every tenant is still backlogged: alpha
  // (weight 3, share 1/2) is the first to drain, at ~2*jobs_per_tenant
  // total completions — snapshot at half that.
  const std::size_t snapshot_at =
      static_cast<std::size_t>(jobs_per_tenant);
  std::vector<std::pair<std::string, TenantSnapshot>> tenants;
  while (poll_stats(server.port(), &tenants) < snapshot_at)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  double weight_sum = 0.0;
  std::size_t dispatched_sum = 0;
  for (const auto& [name, snap] : tenants) {
    weight_sum += snap.weight;
    dispatched_sum += snap.dispatched;
  }
  std::printf("weighted fairness (3 tenants, weights 3/2/1, 1-worker pool)\n");
  double max_rel_error = 0.0;
  for (const auto& [name, snap] : tenants) {
    const double share =
        static_cast<double>(snap.dispatched) / static_cast<double>(dispatched_sum);
    const double expected = snap.weight / weight_sum;
    const double rel_error = std::abs(share - expected) / expected;
    max_rel_error = std::max(max_rel_error, rel_error);
    std::printf("  %-8s weight %.0f  dispatched %4zu  share %.3f  expected %.3f\n",
                name.c_str(), snap.weight, snap.dispatched, share, expected);
  }
  std::printf("  %-28s %10.1f%%\n", "max share error vs weights",
              100.0 * max_rel_error);

  server.queue().wait_all();
  const double total_seconds = us_since(t0) * 1e-6;
  std::printf("  %-28s %10.0f\n", "drained (jobs/s)",
              3.0 * jobs_per_tenant / total_seconds);
  server.stop();
}

// --- Scenario 4: load shedding past a tenant's backlog bound --------------

void run_shedding(int jobs) {
  ThreadPool pool(1);
  ServerOptions options;
  options.pool = &pool;
  ExtractionServer server(options);
  server.configure_tenant("burst", {.weight = 1.0, .max_pending = 8});
  if (!server.start().ok()) return;

  int accepted = 0, shed = 0;
  std::vector<double> shed_us;
  for (int i = 0; i < jobs; ++i) {
    const Clock::time_point t0 = Clock::now();
    const int status =
        submit(server.port(), small_request("burst"), "?tenant=burst", nullptr);
    if (status == 200) {
      ++accepted;
    } else if (status == 503) {
      ++shed;
      shed_us.push_back(us_since(t0));
    }
  }
  server.queue().wait_all();
  server.stop();

  std::printf("load shedding (%d jobs, max_pending=8, 1-worker pool)\n", jobs);
  std::printf("  %-28s %10d\n", "accepted (200)", accepted);
  std::printf("  %-28s %10d\n", "shed (503 kOverloaded)", shed);
  std::printf("  %-28s %10.1f %10.1f\n", "shed response (us p50/p95)",
              percentile(shed_us, 0.5), percentile(shed_us, 0.95));
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs_per_tenant = argc > 1 ? std::atoi(argv[1]) : 60;
  run_latency(std::min(jobs_per_tenant, 40));
  std::printf("\n");
  run_throughput(2 * jobs_per_tenant);
  std::printf("\n");
  run_fairness(jobs_per_tenant);
  std::printf("\n");
  run_shedding(100);
  return 0;
}
