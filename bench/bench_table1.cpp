// Reproduces the paper's Table 1 ("Result Summary"): for each of the 12
// benchmark CSDs, run the fast extraction and the Canny+Hough baseline
// against a replayed diagram (50 ms dwell per unique probe, §5.1) and report
// success/fail, points probed (count and percentage), total runtime
// (simulated experiment time + measured compute time), and speedup.
//
// Absolute times differ from the paper (their substrate is the qflow
// measurement corpus; ours is a physics simulator — DESIGN.md §3), but the
// shape should match: fast succeeds 10/12 and baseline 9/12, fast probes
// ~4-17% of the pixels, and speedups fall in the ~6x-20x band growing with
// diagram size.
#include "common/strings.hpp"
#include "dataset/qflow_synth.hpp"
#include "service/extraction_engine.hpp"

#include <iostream>
#include <string>
#include <vector>

namespace {

struct Row {
  int index;
  std::size_t size;
  bool fast_ok;
  bool base_ok;
  long fast_probes;
  long base_probes;
  double fast_seconds;
  double base_seconds;
  std::string fast_note;
  std::string base_note;
};

}  // namespace

int main() {
  using namespace qvg;

  std::cout << "Table 1 reproduction: fast virtual gate extraction vs "
               "Canny+Hough baseline\n"
            << "(synthetic qflow-like suite, 50 ms dwell per unique probe; "
               "see DESIGN.md)\n\n";

  std::vector<Row> rows;
  int fast_successes = 0;
  int base_successes = 0;

  // The whole table is one engine batch: per benchmark CSD, one fast and
  // one baseline playback request (each builds its own replayed getCurrent,
  // so the batch fans out deterministically).
  const std::vector<QflowBenchmark> suite = build_qflow_suite();
  std::vector<ExtractionRequest> requests;
  for (const auto& benchmark : suite) {
    for (const auto method :
         {ExtractionMethod::kFast, ExtractionMethod::kHoughBaseline}) {
      ExtractionRequest request;
      request.method = method;
      request.playback.csd = &benchmark.csd;
      request.label = benchmark.name();
      requests.push_back(std::move(request));
    }
  }
  const ExtractionEngine engine;
  const std::vector<ExtractionReport> reports = engine.run_batch(requests);

  for (std::size_t i = 0; i < suite.size(); ++i) {
    const QflowBenchmarkSpec& spec = suite[i].spec;
    const ExtractionReport& fast = reports[2 * i];
    const ExtractionReport& base = reports[2 * i + 1];

    Row row{};
    row.index = spec.index;
    row.size = spec.pixels;

    row.fast_ok = fast.verdict.success;
    row.fast_probes = fast.stats.unique_probes;
    row.fast_seconds = fast.stats.total_seconds();
    row.fast_note = fast.verdict.success ? "" : fast.verdict.reason;
    fast_successes += fast.verdict.success ? 1 : 0;

    row.base_ok = base.verdict.success;
    row.base_probes = base.stats.unique_probes;
    row.base_seconds = base.stats.total_seconds();
    row.base_note = base.verdict.success
                        ? ""
                        : (base.status.ok() ? base.verdict.reason
                                            : base.status.message());
    base_successes += base.verdict.success ? 1 : 0;

    rows.push_back(row);
  }

  std::vector<std::string> header{
      "CSD", "Size", "Fast", "Baseline", "Fast probes", "Base probes",
      "Fast time", "Base time", "Speedup"};
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : rows) {
    const double total =
        static_cast<double>(row.size) * static_cast<double>(row.size);
    const double pct = 100.0 * static_cast<double>(row.fast_probes) / total;
    const bool both = row.fast_ok && row.base_ok;
    cells.push_back({
        std::to_string(row.index),
        std::to_string(row.size) + "x" + std::to_string(row.size),
        row.fast_ok ? "Success" : "Fail",
        row.base_ok ? "Success" : "Fail",
        std::to_string(row.fast_probes) + " (" + format_fixed(pct, 2) + "%)",
        std::to_string(row.base_probes) + " (100%)",
        format_fixed(row.fast_seconds, 2) + "s",
        format_fixed(row.base_seconds, 2) + "s",
        both ? format_fixed(row.base_seconds / row.fast_seconds, 2) + "x"
             : "N/A",
    });
  }
  std::cout << render_table(header, cells);

  std::cout << "\nSuccess rate: fast " << fast_successes
            << "/12, baseline " << base_successes << "/12\n";
  for (const auto& row : rows) {
    if (!row.fast_note.empty())
      std::cout << "  csd" << row.index << " fast: " << row.fast_note << "\n";
    if (!row.base_note.empty())
      std::cout << "  csd" << row.index << " baseline: " << row.base_note
                << "\n";
  }

  // Shape check against the paper (soft: report, do not abort).
  std::cout << "\nPaper shape: fast 10/12, baseline 9/12, speedups "
               "5.84x-19.34x, ~10% points probed on average.\n";
  return 0;
}
