// Noise-robustness sweep (DESIGN.md experiment E5), extending the paper's
// Table 1 failure analysis: success rate and mean compensation error of
// both methods versus the white-noise level, on a fixed double-dot device
// (several noise seeds per level). Shows where each method breaks down and
// that the fast method keeps its ~10x probe advantage until both fail.
#include "common/strings.hpp"
#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/hough_baseline.hpp"
#include "extraction/success.hpp"

#include <iostream>
#include <memory>
#include <vector>

int main() {
  using namespace qvg;

  DotArrayParams params;
  params.n_dots = 2;
  params.cross_ratio = 0.25;
  Rng jitter(23);
  params.jitter = 0.04;
  const BuiltDevice device = build_dot_array(params, &jitter);
  const VoltageAxis axis = scan_axis(device, 100);
  const TransitionTruth truth =
      device.model.pair_truth(0, 1, 0, 1, device.base_voltages);

  const std::vector<double> noise_levels{0.0,  0.02, 0.05, 0.08, 0.12,
                                         0.18, 0.25, 0.35, 0.50};
  constexpr int kSeeds = 5;

  std::vector<std::vector<std::string>> rows;
  for (double sigma : noise_levels) {
    int fast_ok = 0;
    int base_ok = 0;
    double fast_err = 0.0;
    double base_err = 0.0;
    long fast_probes = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      {
        DeviceSimulator sim =
            make_pair_simulator(device, 0, 1000 + static_cast<std::uint64_t>(seed));
        if (sigma > 0) sim.add_noise(std::make_unique<WhiteNoise>(sigma));
        const auto result = run_fast_extraction(sim, axis, axis);
        const Verdict verdict =
            judge_extraction(result.status.ok(), result.virtual_gates, truth);
        fast_ok += verdict.success ? 1 : 0;
        fast_err += result.status.ok()
                        ? 0.5 * (verdict.alpha12_rel_error +
                                 verdict.alpha21_rel_error)
                        : 1.0;
        fast_probes += result.stats.unique_probes;
      }
      {
        DeviceSimulator sim =
            make_pair_simulator(device, 0, 2000 + static_cast<std::uint64_t>(seed));
        if (sigma > 0) sim.add_noise(std::make_unique<WhiteNoise>(sigma));
        const auto result = run_hough_baseline(sim, axis, axis);
        const Verdict verdict =
            judge_extraction(result.status.ok(), result.virtual_gates, truth);
        base_ok += verdict.success ? 1 : 0;
        base_err += result.status.ok()
                        ? 0.5 * (verdict.alpha12_rel_error +
                                 verdict.alpha21_rel_error)
                        : 1.0;
      }
    }
    rows.push_back({format_fixed(sigma, 2),
                    std::to_string(fast_ok) + "/" + std::to_string(kSeeds),
                    format_fixed(100.0 * fast_err / kSeeds, 1) + "%",
                    std::to_string(base_ok) + "/" + std::to_string(kSeeds),
                    format_fixed(100.0 * base_err / kSeeds, 1) + "%",
                    std::to_string(fast_probes / kSeeds)});
  }

  std::cout << "Success rate vs white-noise sigma (sensor peak current = 1.0; "
            << kSeeds << " noise seeds per level, 100x100 scans)\n\n"
            << render_table({"sigma", "fast ok", "fast err", "baseline ok",
                             "baseline err", "fast probes"},
                            rows)
            << "\nExpected shape: both methods are solid through moderate "
               "noise, degrade together at high noise (the paper's CSDs 1-2 "
               "regime), and the fast method's probe count stays ~10% of "
               "the 10000-pixel diagram throughout.\n";
  return 0;
}
