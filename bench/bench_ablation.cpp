// Ablation study (DESIGN.md experiment E4) over the design choices the
// paper motivates in §4.3.2: the two sweep directions and the
// post-processing filter, plus this implementation's robustness additions
// (triangle slack, anchor-step clamp, Huber loss). Each variant runs over
// the succeeding benchmarks of the suite; we report success count, mean
// compensation-coefficient error, and mean probes.
#include "common/strings.hpp"
#include "dataset/qflow_synth.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/success.hpp"

#include <cmath>
#include <iostream>
#include <vector>

namespace {

struct Variant {
  std::string name;
  qvg::FastExtractorOptions options;
};

struct Tally {
  int successes = 0;
  int runs = 0;
  double error_sum = 0.0;
  long probe_sum = 0;
};

}  // namespace

int main() {
  using namespace qvg;

  std::vector<Variant> variants;
  variants.push_back({"full method (paper + robustness)", {}});
  {
    FastExtractorOptions opt;
    opt.enable_col_sweep = false;
    variants.push_back({"row sweep only", opt});
  }
  {
    FastExtractorOptions opt;
    opt.enable_row_sweep = false;
    variants.push_back({"column sweep only", opt});
  }
  {
    FastExtractorOptions opt;
    opt.enable_postprocess = false;
    variants.push_back({"no post-processing filter", opt});
  }
  {
    FastExtractorOptions opt;
    opt.sweep.triangle_slack_pixels = 0;
    opt.sweep.max_anchor_step = 0;
    opt.anchors.snap_radius = 0;
    variants.push_back({"paper-literal sweeps (no slack/clamp/snap)", opt});
  }
  {
    FastExtractorOptions opt;
    opt.fit.huber_delta_px = 0.0;
    variants.push_back({"plain least-squares fit (no Huber)", opt});
  }
  {
    FastExtractorOptions opt;
    opt.fit.residual = FitResidual::kVertical;
    variants.push_back({"vertical-residual fit (SciPy-style)", opt});
  }

  // Benchmarks 3-12 (skip the two engineered-to-fail heavy-noise devices).
  std::vector<QflowBenchmark> benchmarks;
  for (const auto& spec : qflow_suite_specs())
    if (spec.index >= 3) benchmarks.push_back(build_qflow_benchmark(spec));

  std::vector<std::vector<std::string>> rows;
  for (const auto& variant : variants) {
    Tally tally;
    for (const auto& benchmark : benchmarks) {
      auto playback = make_playback(benchmark);
      const auto result =
          run_fast_extraction(*playback, benchmark.csd.x_axis(),
                              benchmark.csd.y_axis(), variant.options);
      const auto& truth = *benchmark.csd.truth();
      const Verdict verdict =
          judge_extraction(result.status.ok(), result.virtual_gates, truth);
      ++tally.runs;
      tally.successes += verdict.success ? 1 : 0;
      if (result.status.ok()) {
        tally.error_sum += 0.5 * (verdict.alpha12_rel_error +
                                  verdict.alpha21_rel_error);
      } else {
        tally.error_sum += 1.0;  // count hard failures as 100% error
      }
      tally.probe_sum += result.stats.unique_probes;
    }
    rows.push_back(
        {variant.name,
         std::to_string(tally.successes) + "/" + std::to_string(tally.runs),
         format_fixed(100.0 * tally.error_sum / tally.runs, 1) + "%",
         std::to_string(tally.probe_sum / tally.runs)});
  }

  std::cout << "Ablation over benchmarks CSD 3-12 (success counts use the "
               "same verdict as Table 1)\n\n"
            << render_table({"variant", "success", "mean alpha error",
                             "mean probes"},
                            rows)
            << "\nExpected shape: the full method wins; dropping a sweep or "
               "the filter degrades accuracy on one line family; the "
               "paper-literal sweeps are noticeably more fragile on noisy "
               "devices.\n";
  return 0;
}
