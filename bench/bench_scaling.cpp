// Array-scaling study (DESIGN.md experiment E6): virtualizing a linear
// N-dot array needs N-1 sequential pair extractions (paper §2.3). This
// bench measures total probes and simulated experiment time for the fast
// method vs the full-CSD baseline as N grows — the wall-clock argument for
// fast extraction on the 12- and 16-qubit devices the paper's introduction
// cites.
#include "common/strings.hpp"
#include "extraction/array_extractor.hpp"

#include <iostream>
#include <vector>

int main() {
  using namespace qvg;

  std::cout << "Array scaling: N-dot linear arrays, one extraction per "
               "neighbouring plunger pair (100x100 scans, 50 ms dwell)\n\n";

  std::vector<std::vector<std::string>> rows;
  for (std::size_t n_dots : {2u, 3u, 4u, 6u, 8u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    params.jitter = 0.04;
    Rng jitter(100 + n_dots);
    const BuiltDevice device = build_dot_array(params, &jitter);

    ArrayExtractionOptions fast_opt;
    fast_opt.pixels_per_axis = 100;
    fast_opt.white_noise_sigma = 0.02;
    const auto fast = extract_array_virtualization(device, fast_opt);

    ArrayExtractionOptions base_opt = fast_opt;
    base_opt.method = ExtractionMethod::kHoughBaseline;
    const auto base = extract_array_virtualization(device, base_opt);

    const double fast_minutes = fast.total_stats.total_seconds() / 60.0;
    const double base_minutes = base.total_stats.total_seconds() / 60.0;
    rows.push_back({std::to_string(n_dots),
                    std::to_string(n_dots - 1),
                    std::string(fast.status.ok() ? "yes" : "no"),
                    std::to_string(fast.total_stats.unique_probes),
                    std::to_string(base.total_stats.unique_probes),
                    format_fixed(fast_minutes, 1) + " min",
                    format_fixed(base_minutes, 1) + " min",
                    base.total_stats.total_seconds() > 0 && fast.total_stats.total_seconds() > 0
                        ? format_fixed(base.total_stats.total_seconds() /
                                           fast.total_stats.total_seconds(),
                                       1) + "x"
                        : "N/A",
                    format_fixed(fast.band_max_error, 3)});
  }

  std::cout << render_table({"dots", "pairs", "fast ok", "fast probes",
                             "base probes", "fast time", "base time",
                             "speedup", "fast band err"},
                            rows)
            << "\nExpected shape: both methods scale linearly in N (N-1 "
               "pair scans), with the fast method a constant ~10x cheaper "
               "per pair — hours vs tens of minutes by 8 dots.\n";
  return 0;
}
