// Reproduces the paper's Figure 3 (illustrative): a double-dot CSD before
// and after applying the extracted virtualization matrix. In the virtual
// frame the steep transition line becomes vertical and the shallow line
// horizontal — "one-to-one" control. Writes PGM images and prints the
// orthogonality metrics.
#include "dataset/csd_io.hpp"
#include "device/dot_array.hpp"
#include "extraction/fast_extractor.hpp"

#include <iostream>

int main() {
  using namespace qvg;

  DotArrayParams params;
  params.n_dots = 2;
  params.cross_ratio = 0.28;
  Rng jitter(17);
  params.jitter = 0.05;
  const BuiltDevice device = build_dot_array(params, &jitter);
  DeviceSimulator sim = make_pair_simulator(device);
  const VoltageAxis axis = scan_axis(device, 150);

  // Record the physical-frame diagram.
  Csd physical = sim.generate_csd(axis, axis, "fig3_physical");
  save_csd_pgm(physical, "fig3_physical.pgm");

  // Extract virtual gates with the fast method.
  sim.reset();
  const auto result = run_fast_extraction(sim, axis, axis);
  if (!result.status.ok()) {
    std::cerr << "extraction failed: " << result.status.message() << "\n";
    return 1;
  }

  const auto truth = sim.truth();
  std::cout << "Extracted: a12 = " << result.virtual_gates.alpha12
            << " (truth " << truth.alpha12() << "), a21 = "
            << result.virtual_gates.alpha21 << " (truth " << truth.alpha21()
            << ")\n";

  const Csd virtualized = warp_to_virtual(physical, result.virtual_gates);
  save_csd_pgm(virtualized, "fig3_virtual.pgm");

  const double angle_before =
      angle_between_slopes_deg(truth.slope_steep, truth.slope_shallow);
  const double angle_after = virtualized_angle_deg(
      result.virtual_gates, truth.slope_steep, truth.slope_shallow);
  std::cout << "Angle between transition lines: " << angle_before
            << " deg (physical frame) -> " << angle_after
            << " deg (virtual frame; 90 = perfect orthogonal control)\n"
            << "wrote fig3_physical.pgm, fig3_virtual.pgm\n";
  return angle_after > 85.0 ? 0 : 1;
}
