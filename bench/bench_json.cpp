// Machine-readable perf harness seeding the repo's BENCH_*.json trajectory.
//
// Runs three scenario families and emits one JSON document:
//   bench_micro   — dense-raster evaluation (naive vs incremental vs
//                   parallel, the PR's headline ablation), per-solve
//                   charge-state solver timings, and the image pipeline.
//   bench_table1  — one fast extraction + one Canny/Hough baseline run
//                   (unique probes, cache hit rate, compute/simulated time).
//   bench_scaling — 3-dot array virtualization, fast vs baseline.
//
// Usage: bench_json [output.json]   (default: BENCH_PR1.json in the CWD)
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "device/dot_array.hpp"
#include "extraction/array_extractor.hpp"
#include "extraction/fast_extractor.hpp"
#include "extraction/hough_baseline.hpp"
#include "imgproc/canny.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/hough.hpp"
#include "probe/probe_cache.hpp"
#include "probe/raster.hpp"

#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace qvg;

/// Best-of-`reps` wall-clock seconds of `fn`.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    fn();
    best = std::min(best, w.elapsed_seconds());
  }
  return best;
}

struct JsonWriter {
  std::ostringstream out;
  bool first_scenario = true;

  void begin() { out << "{\n  \"bench\": \"PR1\",\n  \"scenarios\": [\n"; }
  void end() {
    out << "\n  ]\n}\n";
  }
  void begin_scenario(const std::string& name) {
    if (!first_scenario) out << ",\n";
    first_scenario = false;
    out << "    {\"name\": \"" << name << "\"";
  }
  void field(const std::string& key, double value) {
    out << ", \"" << key << "\": " << value;
  }
  void field(const std::string& key, long value) {
    out << ", \"" << key << "\": " << value;
  }
  void field(const std::string& key, bool value) {
    out << ", \"" << key << "\": " << (value ? "true" : "false");
  }
  void end_scenario() { out << "}"; }
};

GridD make_test_image(std::size_t n) {
  Rng rng(99);
  GridD image(n, n);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      image(x, y) = (x > n / 2 ? 0.2 : 0.8) + 0.05 * rng.normal();
  return image;
}

void bench_dense_raster(JsonWriter& json) {
  // The headline ablation: every pixel of a 100x100 window evaluated
  // through the naive per-pixel path vs the incremental/batched path. The
  // solver share of the per-pixel cost grows with dot count, so the
  // multi-dot scenarios show the full algorithmic gain.
  for (std::size_t n_dots : {2u, 3u, 4u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    const DeviceSimulator sim = make_pair_simulator(device);
    const VoltageAxis axis = scan_axis(device, 100);

    RasterEvalOptions naive{RasterEvalMode::kNaive, false};
    RasterEvalOptions fast_serial{RasterEvalMode::kFast, false};
    RasterEvalOptions fast_parallel{RasterEvalMode::kFast, true};

    GridD naive_grid, fast_grid;
    const double naive_s = time_best(
        3, [&] { naive_grid = sim.evaluate_raster(axis, axis, naive); });
    const double serial_s = time_best(
        5, [&] { fast_grid = sim.evaluate_raster(axis, axis, fast_serial); });
    const bool identical = naive_grid == fast_grid;
    GridD parallel_grid;
    const double parallel_s = time_best(5, [&] {
      parallel_grid = sim.evaluate_raster(axis, axis, fast_parallel);
    });

    json.begin_scenario("micro_dense_raster_100x100_" +
                        std::to_string(n_dots) + "dot");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("naive_seconds", naive_s);
    json.field("fast_serial_seconds", serial_s);
    json.field("fast_parallel_seconds", parallel_s);
    json.field("speedup_serial", naive_s / serial_s);
    json.field("speedup_parallel", naive_s / parallel_s);
    json.field("results_identical", identical && fast_grid == parallel_grid);
    json.field("threads", static_cast<long>(ThreadPool::global().size()));
    json.end_scenario();
  }
}

void bench_solver(JsonWriter& json) {
  for (std::size_t n_dots : {2u, 3u, 4u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    Rng rng(7 + n_dots);
    const int solves = 2000;
    std::vector<std::vector<double>> drive_sets;
    drive_sets.reserve(solves);
    std::vector<double> voltages(n_dots);
    for (int s = 0; s < solves; ++s) {
      for (auto& v : voltages) v = rng.uniform(0.0, 0.06);
      drive_sets.push_back(device.model.dot_drives(voltages));
    }

    const double naive_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_exhaustive(device.model, d, 4);
    });
    IncrementalGroundStateSolver solver(device.model);
    const double fast_s = time_best(3, [&] {
      for (const auto& d : drive_sets) (void)solver.solve(d, 4);
    });

    json.begin_scenario("micro_solver_" + std::to_string(n_dots) + "dot");
    json.field("solves", static_cast<long>(solves));
    json.field("naive_us_per_solve", naive_s / solves * 1e6);
    json.field("incremental_us_per_solve", fast_s / solves * 1e6);
    json.field("speedup", naive_s / fast_s);
    json.end_scenario();
  }
}

void bench_imgproc(JsonWriter& json) {
  const GridD image = make_test_image(200);
  set_parallelism_enabled(false);
  const double blur_serial = time_best(3, [&] { (void)gaussian_blur(image, 1.4); });
  const double canny_serial = time_best(3, [&] { (void)canny(image); });
  const GridU8 edges = canny(image);
  const double hough_serial = time_best(3, [&] { (void)hough_lines(edges); });
  set_parallelism_enabled(true);
  const double blur_parallel = time_best(3, [&] { (void)gaussian_blur(image, 1.4); });
  const double canny_parallel = time_best(3, [&] { (void)canny(image); });
  const double hough_parallel = time_best(3, [&] { (void)hough_lines(edges); });

  json.begin_scenario("micro_imgproc_200px");
  json.field("gaussian_blur_serial_ms", blur_serial * 1e3);
  json.field("gaussian_blur_parallel_ms", blur_parallel * 1e3);
  json.field("canny_serial_ms", canny_serial * 1e3);
  json.field("canny_parallel_ms", canny_parallel * 1e3);
  json.field("hough_serial_ms", hough_serial * 1e3);
  json.field("hough_parallel_ms", hough_parallel * 1e3);
  json.field("threads", static_cast<long>(ThreadPool::global().size()));
  json.end_scenario();
}

void bench_extraction(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);

  {
    DeviceSimulator sim = make_pair_simulator(device);
    Stopwatch w;
    const auto fast = run_fast_extraction(sim, axis, axis);
    const double wall = w.elapsed_seconds();
    json.begin_scenario("table1_fast_extraction_100px");
    json.field("success", fast.success);
    json.field("unique_probes", fast.stats.unique_probes);
    json.field("total_requests", fast.stats.total_requests);
    json.field("probe_fraction",
               static_cast<double>(fast.stats.unique_probes) /
                   static_cast<double>(axis.count() * axis.count()));
    json.field("compute_seconds", fast.stats.compute_seconds);
    json.field("simulated_seconds", fast.stats.simulated_seconds);
    json.field("wall_seconds", wall);
    json.end_scenario();
  }
  {
    DeviceSimulator sim = make_pair_simulator(device);
    Stopwatch w;
    const auto base = run_hough_baseline(sim, axis, axis);
    const double wall = w.elapsed_seconds();
    json.begin_scenario("table1_hough_baseline_100px");
    json.field("success", base.success);
    json.field("unique_probes", base.stats.unique_probes);
    json.field("compute_seconds", base.stats.compute_seconds);
    json.field("simulated_seconds", base.stats.simulated_seconds);
    json.field("wall_seconds", wall);
    json.end_scenario();
  }
  {
    // ProbeCache behaviour on a dense double raster: the second pass is
    // entirely cache hits.
    DeviceSimulator sim = make_pair_simulator(device);
    ProbeCache cache(sim, axis.step());
    cache.reserve(axis.count() * axis.count());
    (void)acquire_full_csd(cache, axis, axis);
    (void)acquire_full_csd(cache, axis, axis);
    json.begin_scenario("probe_cache_double_raster_100px");
    json.field("requests", cache.probe_count());
    json.field("unique_probes", cache.unique_probe_count());
    json.field("cache_hit_rate", cache.cache_hit_rate());
    json.end_scenario();
  }
}

void bench_scaling(JsonWriter& json) {
  DotArrayParams params;
  params.n_dots = 3;
  const BuiltDevice device = build_dot_array(params);

  ArrayExtractionOptions fast_opt;
  fast_opt.pixels_per_axis = 100;
  Stopwatch wf;
  const auto fast = extract_array_virtualization(device, fast_opt);
  const double fast_wall = wf.elapsed_seconds();

  ArrayExtractionOptions base_opt = fast_opt;
  base_opt.method = ExtractionMethod::kHoughBaseline;
  Stopwatch wb;
  const auto base = extract_array_virtualization(device, base_opt);
  const double base_wall = wb.elapsed_seconds();

  json.begin_scenario("scaling_array_3dot");
  json.field("fast_success", fast.success);
  json.field("fast_unique_probes", fast.total_stats.unique_probes);
  json.field("fast_total_seconds", fast.total_stats.total_seconds());
  json.field("fast_wall_seconds", fast_wall);
  json.field("baseline_success", base.success);
  json.field("baseline_unique_probes", base.total_stats.unique_probes);
  json.field("baseline_total_seconds", base.total_stats.total_seconds());
  json.field("baseline_wall_seconds", base_wall);
  json.field("probe_ratio",
             static_cast<double>(fast.total_stats.unique_probes) /
                 static_cast<double>(base.total_stats.unique_probes));
  json.end_scenario();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_PR1.json";

  JsonWriter json;
  json.out.precision(6);
  json.begin();
  bench_dense_raster(json);
  bench_solver(json);
  bench_imgproc(json);
  bench_extraction(json);
  bench_scaling(json);
  json.end();

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  file << json.out.str();
  std::cout << json.out.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
