// Machine-readable perf harness seeding the repo's BENCH_*.json trajectory.
//
// Scenario families (PR 1/2 kept reproducible, PR 3 added on top):
//   bench_micro       — dense-raster evaluation (naive vs incremental vs
//                       parallel), per-solve charge-state solver timings,
//                       and the image pipeline.                       (PR 1)
//   bench_table1      — one fast extraction + one Canny/Hough baseline run
//                       (unique probes, cache hit rate, timings).     (PR 1)
//   bench_scaling     — 3-dot array virtualization, fast vs baseline. (PR 1)
//   solver_scaling    — 5-7 dot ground-state solves: exhaustive reference vs
//                       unpruned incremental vs branch-and-bound (cold and
//                       warm-started) vs delta-ICM greedy (single and
//                       multi-start), with visited/pruned state counts and
//                       exactness fractions.                          (PR 2)
//   array_scaling     — 3-8 dot array virtualization, serial vs parallel
//                       pair loop (bit-identical check) and fast vs
//                       baseline probe costs.                         (PR 2)
//   suite_generation  — the 12-diagram qflow suite, serial vs parallel
//                       build (bit-identical check).                  (PR 2)
//   probe_path        — full-CSD acquisition through the batched
//                       get_currents interface vs the scalar per-pixel
//                       loop, on the simulator and on playback
//                       (bit-identical check).                        (PR 3)
//   engine_overhead   — ExtractionEngine façade vs calling the extraction
//                       entry points directly, plus serial-vs-parallel
//                       batch submission.                             (PR 3)
//   cancellation_check_overhead — context-checked (row-batched, per-row
//                       interruption check) full-CSD acquisition vs the
//                       PR 3 single-batch path, simulator and playback
//                       (bit-identical check; expected <= 2% on the
//                       simulator).                                   (PR 4)
//   async_queue_throughput — N extraction jobs through the async JobQueue
//                       at fixed worker counts vs a serial engine.run
//                       loop (reports bit-identical).                 (PR 4)
//   async_parallel_raster — ONE raster-dominated job through the JobQueue:
//                       the cooperative-scheduler fix (a job's nested
//                       parallel_for fans out across the pool instead of
//                       running inline-serial on its worker) vs the PR 4
//                       serial-async behaviour, vs the synchronous
//                       serial/parallel engine runs (all four reports
//                       bit-identical).                               (PR 5)
//   priority_latency  — interactive-job completion latency under a
//                       saturating batch backlog on a single worker:
//                       priority scheduling vs FIFO submission order.
//                                                                     (PR 5)
//   fault_success_vs_rate — extraction success fronts under injected
//                       transient probe faults at 0-20% per-batch rates,
//                       8 deterministic seeds each, with the retry/backoff
//                       recovery vs retries disabled.                 (PR 6)
//   drift_recovery_raster — a deterministic telegraph charge jump mid-
//                       raster: targeted re-acquisition cost vs a full
//                       re-scan, recovered grid bit-identical to clean.
//                                                                     (PR 6)
//   retry_overhead_zero_fault — the fault-tolerant probe path (zero-fault
//                       injector + retry wrapper + recorder) vs the checked
//                       and plain acquisitions: what recovery plumbing
//                       costs when nothing ever fails.                (PR 6)
//   kernel_sweep      — per-kernel before/after for the SIMD + cache-blocking
//                       pass, all single-threaded: correlate / separable /
//                       sobel (reference vs SIMD, bit-identical except the
//                       documented sobel-magnitude ULP bound, which is
//                       recorded), canny at 100 and 200 px (atan2+hypot
//                       reference pipeline vs ladder+SIMD), hough flat vs
//                       blocked accumulation, and 5-7 dot solver bound
//                       batches. Each scenario carries *_identical (or
//                       max-ULP) fields so the snapshot itself proves the
//                       fast paths are pinned.                        (PR 7)
//   server_submit_latency_1tenant
//                     — wire API end-to-end over real loopback sockets:
//                       submit -> job-id, submit -> first SSE progress
//                       event, submit -> final report (p50/p95 us), one
//                       64px fast job at a time on the default pool. (PR 8)
//   server_fairness_3tenants_weighted
//                     — deficit-weighted fairness under saturation:
//                       tenants with weights 3/2/1, equal open-loop
//                       backlogs on a single-worker pool; dispatch shares
//                       sampled while all tenants are backlogged, plus
//                       the max relative share error vs the configured
//                       weights and the drain throughput.            (PR 8)
//   server_load_shedding
//                     — admission control past a tenant's max_pending
//                       bound: accepted vs shed (HTTP 503 / kOverloaded)
//                       counts and the p50 shed-response latency (a shed
//                       must cost no probes and ~no time).           (PR 8)
//
// The top-level "metadata" object records the CPU model, compiler, SIMD
// configuration and build flags, so snapshot numbers are attributable when
// the sweep is re-run on different hardware.
//
// Extraction scenarios run through the ExtractionEngine façade (PR 3); the
// micro solver/imgproc scenarios have no extraction to route.
//
// Every scenario records the effective thread count (set QVG_THREADS=N to
// re-measure on multi-core hardware in one variable).
//
// Usage: bench_json [output.json] [filter]
//   (default output: BENCH_PR10.json in the CWD; `filter` is an optional
//   substring matched against scenario-family names — only matching families
//   run, e.g. `bench_json out.json solver_frontier`. An unknown filter runs
//   nothing and lists the family names.)
#include "common/simd.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "dataset/qflow_synth.hpp"
#include "device/dot_array.hpp"
#include "imgproc/canny.hpp"
#include "imgproc/convolve.hpp"
#include "imgproc/filters.hpp"
#include "imgproc/hough.hpp"
#include "imgproc/kernel.hpp"
#include "imgproc/sobel.hpp"
#include "probe/fault_injection.hpp"
#include "probe/playback.hpp"
#include "probe/probe_cache.hpp"
#include "probe/raster.hpp"
#include "server/extraction_server.hpp"
#include "server/http_client.hpp"
#include "service/job_queue.hpp"
#include "wire/json.hpp"
#include "wire/messages.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace qvg;

/// Best-of-`reps` wall-clock seconds of `fn`.
template <typename Fn>
double time_best(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Stopwatch w;
    fn();
    best = std::min(best, w.elapsed_seconds());
  }
  return best;
}

/// First "model name" line from /proc/cpuinfo, or "unknown" off-Linux.
std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (line.compare(0, 10, "model name") == 0 && colon != std::string::npos) {
      auto start = line.find_first_not_of(" \t", colon + 1);
      if (start == std::string::npos) break;
      return line.substr(start);
    }
  }
  return "unknown";
}

struct JsonWriter {
  std::ostringstream out;
  bool first_scenario = true;

  void begin() {
    out << "{\n  \"bench\": \"PR10\",\n  \"metadata\": {\n"
        << "    \"cpu\": \"" << cpu_model() << "\",\n"
        << "    \"compiler\": \"" << __VERSION__ << "\",\n"
#ifdef QVG_BUILD_FLAGS
        << "    \"build_flags\": \"" << QVG_BUILD_FLAGS << "\",\n"
#endif
        << "    \"simd_native\": " << (simd::kNative ? "true" : "false")
        << ",\n"
        << "    \"simd_double_lanes\": " << simd::kDoubleLanes << ",\n"
        << "    \"simd_float_lanes\": " << simd::kFloatLanes << "\n"
        << "  },\n  \"scenarios\": [\n";
  }
  void end() {
    out << "\n  ]\n}\n";
  }
  void begin_scenario(const std::string& name) {
    if (!first_scenario) out << ",\n";
    first_scenario = false;
    out << "    {\"name\": \"" << name << "\"";
    field("threads", static_cast<long>(ThreadPool::global().size()));
  }
  void field(const std::string& key, double value) {
    out << ", \"" << key << "\": " << value;
  }
  void field(const std::string& key, long value) {
    out << ", \"" << key << "\": " << value;
  }
  void field(const std::string& key, bool value) {
    out << ", \"" << key << "\": " << (value ? "true" : "false");
  }
  void end_scenario() { out << "}"; }
};

GridD make_test_image(std::size_t n) {
  Rng rng(99);
  GridD image(n, n);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x)
      image(x, y) = (x > n / 2 ? 0.2 : 0.8) + 0.05 * rng.normal();
  return image;
}

void bench_dense_raster(JsonWriter& json) {
  // The PR 1 headline ablation: every pixel of a 100x100 window evaluated
  // through the naive per-pixel path vs the incremental/batched path. The
  // solver share of the per-pixel cost grows with dot count, so the
  // multi-dot scenarios show the full algorithmic gain.
  for (std::size_t n_dots : {2u, 3u, 4u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    const DeviceSimulator sim = make_pair_simulator(device);
    const VoltageAxis axis = scan_axis(device, 100);

    RasterEvalOptions naive{RasterEvalMode::kNaive, false};
    RasterEvalOptions fast_serial{RasterEvalMode::kFast, false};
    RasterEvalOptions fast_parallel{RasterEvalMode::kFast, true};

    GridD naive_grid, fast_grid;
    const double naive_s = time_best(
        3, [&] { naive_grid = sim.evaluate_raster(axis, axis, naive); });
    const double serial_s = time_best(
        5, [&] { fast_grid = sim.evaluate_raster(axis, axis, fast_serial); });
    const bool identical = naive_grid == fast_grid;
    GridD parallel_grid;
    const double parallel_s = time_best(5, [&] {
      parallel_grid = sim.evaluate_raster(axis, axis, fast_parallel);
    });

    json.begin_scenario("micro_dense_raster_100x100_" +
                        std::to_string(n_dots) + "dot");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("naive_seconds", naive_s);
    json.field("fast_serial_seconds", serial_s);
    json.field("fast_parallel_seconds", parallel_s);
    json.field("speedup_serial", naive_s / serial_s);
    json.field("speedup_parallel", naive_s / parallel_s);
    json.field("results_identical", identical && fast_grid == parallel_grid);
    json.end_scenario();
  }
}

void bench_solver(JsonWriter& json) {
  for (std::size_t n_dots : {2u, 3u, 4u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    Rng rng(7 + n_dots);
    const int solves = 2000;
    std::vector<std::vector<double>> drive_sets;
    drive_sets.reserve(solves);
    std::vector<double> voltages(n_dots);
    for (int s = 0; s < solves; ++s) {
      for (auto& v : voltages) v = rng.uniform(0.0, 0.06);
      drive_sets.push_back(device.model.dot_drives(voltages));
    }

    const double naive_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_exhaustive(device.model, d, 4);
    });
    IncrementalGroundStateSolver solver(device.model);
    const double fast_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)solver.solve(d, 4, nullptr, ExhaustiveStrategy::kFullEnumeration);
    });
    const double bb_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)solver.solve(d, 4, nullptr, ExhaustiveStrategy::kBranchAndBound);
    });

    json.begin_scenario("micro_solver_" + std::to_string(n_dots) + "dot");
    json.field("solves", static_cast<long>(solves));
    json.field("naive_us_per_solve", naive_s / solves * 1e6);
    json.field("incremental_us_per_solve", fast_s / solves * 1e6);
    json.field("bb_us_per_solve", bb_s / solves * 1e6);
    json.field("speedup", naive_s / fast_s);
    json.field("speedup_bb", naive_s / bb_s);
    json.end_scenario();
  }
}

// PR 2: the exact-solver frontier. Branch-and-bound makes exhaustive solves
// tractable where PR 1's full enumeration walks m^n states, and the
// delta-ICM greedy replaces the copy-based reference for arrays beyond the
// exhaustive limit. Accuracy fractions compare every approximate result
// against the exact ground state.
void bench_solver_scaling(JsonWriter& json) {
  for (std::size_t n_dots : {5u, 6u, 7u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    Rng rng(31 + n_dots);
    const int solves = n_dots >= 7 ? 20 : 60;
    std::vector<std::vector<double>> drive_sets;
    drive_sets.reserve(solves);
    std::vector<double> voltages(n_dots);
    for (int s = 0; s < solves; ++s) {
      for (auto& v : voltages) v = rng.uniform(0.0, 0.06);
      drive_sets.push_back(device.model.dot_drives(voltages));
    }

    const double naive_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_exhaustive(device.model, d, 4);
    });
    IncrementalGroundStateSolver solver(device.model);
    const double full_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)solver.solve(d, 4, nullptr, ExhaustiveStrategy::kFullEnumeration);
    });
    const double bb_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)solver.solve(d, 4, nullptr, ExhaustiveStrategy::kBranchAndBound);
    });
    // Warm-started chain: each solve seeds the next (the raster pattern),
    // which is where the incumbent-driven pruning pays most.
    const double bb_warm_s = time_best(2, [&] {
      std::vector<int> prev;
      for (const auto& d : drive_sets) {
        prev = solver.solve(d, 4, prev.empty() ? nullptr : &prev,
                            ExhaustiveStrategy::kBranchAndBound);
      }
    });

    const double greedy_ref_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_greedy_reference(device.model, d, 4);
    });
    const double greedy_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_greedy(device.model, d, 4);
    });
    const int restarts = 8;
    const double multistart_s = time_best(2, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_greedy_multistart(device.model, d, 4, restarts);
    });

    // Exactness + pruning accounting (outside the timed loops).
    bool bb_matches_full = true;
    bool greedy_matches_reference = true;
    long greedy_exact = 0;
    long multistart_exact = 0;
    double visited_fraction_sum = 0.0;
    std::uint64_t total_states = 1;
    for (std::size_t j = 0; j < n_dots; ++j) total_states *= 5;  // m = 5
    for (const auto& d : drive_sets) {
      const auto exact = solver.solve(d, 4, nullptr,
                                      ExhaustiveStrategy::kBranchAndBound);
      visited_fraction_sum +=
          static_cast<double>(solver.last_stats().states_visited) /
          static_cast<double>(total_states);
      if (exact !=
          solver.solve(d, 4, nullptr, ExhaustiveStrategy::kFullEnumeration))
        bb_matches_full = false;
      const auto greedy = ground_state_greedy(device.model, d, 4);
      if (greedy != ground_state_greedy_reference(device.model, d, 4))
        greedy_matches_reference = false;
      if (greedy == exact) ++greedy_exact;
      if (ground_state_greedy_multistart(device.model, d, 4, restarts) == exact)
        ++multistart_exact;
    }

    json.begin_scenario("solver_scaling_" + std::to_string(n_dots) + "dot");
    json.field("solves", static_cast<long>(solves));
    json.field("states_total", static_cast<long>(total_states));
    json.field("naive_us_per_solve", naive_s / solves * 1e6);
    json.field("incremental_us_per_solve", full_s / solves * 1e6);
    json.field("bb_us_per_solve", bb_s / solves * 1e6);
    json.field("bb_warm_us_per_solve", bb_warm_s / solves * 1e6);
    json.field("bb_speedup_vs_incremental", full_s / bb_s);
    json.field("bb_warm_speedup_vs_incremental", full_s / bb_warm_s);
    json.field("bb_states_visited_fraction", visited_fraction_sum / solves);
    json.field("bb_matches_incremental", bb_matches_full);
    json.field("greedy_reference_us_per_solve", greedy_ref_s / solves * 1e6);
    json.field("greedy_delta_us_per_solve", greedy_s / solves * 1e6);
    json.field("greedy_delta_speedup", greedy_ref_s / greedy_s);
    json.field("greedy_matches_reference", greedy_matches_reference);
    json.field("greedy_exact_fraction",
               static_cast<double>(greedy_exact) / solves);
    json.field("multistart_restarts", static_cast<long>(restarts));
    json.field("multistart_us_per_solve", multistart_s / solves * 1e6);
    json.field("multistart_exact_fraction",
               static_cast<double>(multistart_exact) / solves);
    json.end_scenario();
  }
}

void bench_imgproc(JsonWriter& json) {
  const GridD image = make_test_image(200);
  set_parallelism_enabled(false);
  const double blur_serial = time_best(3, [&] { (void)gaussian_blur(image, 1.4); });
  const double canny_serial = time_best(3, [&] { (void)canny(image); });
  const GridU8 edges = canny(image);
  const double hough_serial = time_best(3, [&] { (void)hough_lines(edges); });
  set_parallelism_enabled(true);
  const double blur_parallel = time_best(3, [&] { (void)gaussian_blur(image, 1.4); });
  const double canny_parallel = time_best(3, [&] { (void)canny(image); });
  const double hough_parallel = time_best(3, [&] { (void)hough_lines(edges); });

  json.begin_scenario("micro_imgproc_200px");
  json.field("gaussian_blur_serial_ms", blur_serial * 1e3);
  json.field("gaussian_blur_parallel_ms", blur_parallel * 1e3);
  json.field("canny_serial_ms", canny_serial * 1e3);
  json.field("canny_parallel_ms", canny_parallel * 1e3);
  json.field("hough_serial_ms", hough_serial * 1e3);
  json.field("hough_parallel_ms", hough_parallel * 1e3);
  json.end_scenario();
}

void bench_extraction(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);

  // PR 3: both Table-1 scenarios are served by the ExtractionEngine (results
  // are equivalence-tested bit-identical to the direct entry points).
  ExtractionEngine engine;
  ExtractionRequest request;
  request.device.device = &device;
  request.device.pixels_per_axis = 100;

  {
    request.method = ExtractionMethod::kFast;
    const ExtractionReport fast = engine.run(request);
    json.begin_scenario("table1_fast_extraction_100px");
    json.field("success", fast.status.ok());
    json.field("unique_probes", fast.stats.unique_probes);
    json.field("total_requests", fast.stats.total_requests);
    json.field("probe_fraction",
               static_cast<double>(fast.stats.unique_probes) /
                   static_cast<double>(axis.count() * axis.count()));
    json.field("compute_seconds", fast.stats.compute_seconds);
    json.field("simulated_seconds", fast.stats.simulated_seconds);
    json.field("wall_seconds", fast.wall_seconds);
    json.end_scenario();
  }
  {
    request.method = ExtractionMethod::kHoughBaseline;
    const ExtractionReport base = engine.run(request);
    json.begin_scenario("table1_hough_baseline_100px");
    json.field("success", base.status.ok());
    json.field("unique_probes", base.stats.unique_probes);
    json.field("compute_seconds", base.stats.compute_seconds);
    json.field("simulated_seconds", base.stats.simulated_seconds);
    json.field("wall_seconds", base.wall_seconds);
    json.end_scenario();
  }
  {
    // ProbeCache behaviour on a dense double raster: the second pass is
    // entirely cache hits.
    DeviceSimulator sim = make_pair_simulator(device);
    ProbeCache cache(sim, axis.step());
    cache.reserve(axis.count() * axis.count());
    (void)acquire_full_csd(cache, axis, axis);
    (void)acquire_full_csd(cache, axis, axis);
    json.begin_scenario("probe_cache_double_raster_100px");
    json.field("requests", cache.probe_count());
    json.field("unique_probes", cache.unique_probe_count());
    json.field("cache_hit_rate", cache.cache_hit_rate());
    json.end_scenario();
  }
}

void bench_scaling(JsonWriter& json) {
  DotArrayParams params;
  params.n_dots = 3;
  const BuiltDevice device = build_dot_array(params);
  const ExtractionEngine engine;

  ArrayExtractionOptions fast_opt;
  fast_opt.pixels_per_axis = 100;
  Stopwatch wf;
  const auto fast = engine.run_array(device, fast_opt);
  const double fast_wall = wf.elapsed_seconds();

  ArrayExtractionOptions base_opt = fast_opt;
  base_opt.method = ExtractionMethod::kHoughBaseline;
  Stopwatch wb;
  const auto base = engine.run_array(device, base_opt);
  const double base_wall = wb.elapsed_seconds();

  json.begin_scenario("scaling_array_3dot");
  json.field("fast_success", fast.status.ok());
  json.field("fast_unique_probes", fast.total_stats.unique_probes);
  json.field("fast_total_seconds", fast.total_stats.total_seconds());
  json.field("fast_wall_seconds", fast_wall);
  json.field("baseline_success", base.status.ok());
  json.field("baseline_unique_probes", base.total_stats.unique_probes);
  json.field("baseline_total_seconds", base.total_stats.total_seconds());
  json.field("baseline_wall_seconds", base_wall);
  json.field("probe_ratio",
             static_cast<double>(fast.total_stats.unique_probes) /
                 static_cast<double>(base.total_stats.unique_probes));
  json.end_scenario();
}

/// Deterministic extraction fields only (compute_seconds is wall time and
/// legitimately varies run to run).
bool array_results_identical(const ArrayExtractionResult& a,
                             const ArrayExtractionResult& b) {
  if (a.status != b.status || a.pairs.size() != b.pairs.size()) return false;
  if (a.band_max_error != b.band_max_error) return false;
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    const auto& pa = a.pairs[i];
    const auto& pb = b.pairs[i];
    if (pa.pair_index != pb.pair_index || pa.status != pb.status ||
        pa.gates.alpha12 != pb.gates.alpha12 ||
        pa.gates.alpha21 != pb.gates.alpha21 ||
        pa.stats.unique_probes != pb.stats.unique_probes ||
        pa.stats.total_requests != pb.stats.total_requests ||
        pa.stats.simulated_seconds != pb.stats.simulated_seconds)
      return false;
  }
  for (std::size_t i = 0; i < a.matrix.rows(); ++i)
    for (std::size_t j = 0; j < a.matrix.cols(); ++j)
      if (a.matrix(i, j) != b.matrix(i, j)) return false;
  return true;
}

// PR 2: the paper's n-1 sequential pair extractions fanned out over the
// pool, 3-8 dots. Serial vs parallel must be bit-identical; the baseline
// comparison (full rasters per pair) runs at <= 5 dots where its cost stays
// reasonable on one core.
void bench_array_scaling(JsonWriter& json) {
  for (std::size_t n_dots : {3u, 4u, 5u, 6u, 7u, 8u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);

    ArrayExtractionOptions serial_opt;
    serial_opt.pixels_per_axis = 64;
    serial_opt.parallel = false;
    ArrayExtractionOptions parallel_opt = serial_opt;
    parallel_opt.parallel = true;

    const ExtractionEngine engine;
    ArrayExtractionResult serial_result, parallel_result;
    const double serial_s = time_best(2, [&] {
      serial_result = engine.run_array(device, serial_opt);
    });
    const double parallel_s = time_best(2, [&] {
      parallel_result = engine.run_array(device, parallel_opt);
    });

    json.begin_scenario("array_scaling_" + std::to_string(n_dots) + "dot");
    json.field("pairs", static_cast<long>(n_dots - 1));
    json.field("fast_success", serial_result.status.ok());
    json.field("fast_unique_probes", serial_result.total_stats.unique_probes);
    json.field("fast_serial_seconds", serial_s);
    json.field("fast_parallel_seconds", parallel_s);
    json.field("fast_parallel_speedup", serial_s / parallel_s);
    json.field("serial_parallel_identical",
               array_results_identical(serial_result, parallel_result));
    if (n_dots <= 5) {
      ArrayExtractionOptions base_opt = parallel_opt;
      base_opt.method = ExtractionMethod::kHoughBaseline;
      ArrayExtractionResult base_result;
      const double base_s = time_best(2, [&] {
        base_result = engine.run_array(device, base_opt);
      });
      json.field("baseline_success", base_result.status.ok());
      json.field("baseline_unique_probes",
                 base_result.total_stats.unique_probes);
      json.field("baseline_seconds", base_s);
      json.field("probe_ratio",
                 static_cast<double>(serial_result.total_stats.unique_probes) /
                     static_cast<double>(base_result.total_stats.unique_probes));
    }
    json.end_scenario();
  }
}

// PR 3: full-CSD acquisition through the batched get_currents probe path vs
// the pre-redesign scalar per-pixel loop, on both backends. The simulator
// case shows the interface-level win (parallel physics behind the same
// CurrentSource API); playback shows the amortized-dispatch floor.
void bench_probe_path(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);

  // The scalar reference: what acquire_full_csd did before the batched
  // interface (per-pixel virtual get_current calls).
  auto acquire_scalar = [&](CurrentSource& source) {
    Csd csd(axis, axis);
    for (std::size_t y = 0; y < axis.count(); ++y) {
      const double vy = axis.voltage(static_cast<double>(y));
      for (std::size_t x = 0; x < axis.count(); ++x)
        csd.grid()(x, y) =
            source.get_current(axis.voltage(static_cast<double>(x)), vy);
    }
    return csd;
  };

  {
    Csd scalar_csd, batched_csd;
    const double scalar_s = time_best(3, [&] {
      DeviceSimulator sim = make_pair_simulator(device);
      scalar_csd = acquire_scalar(sim);
    });
    const double batched_s = time_best(3, [&] {
      DeviceSimulator sim = make_pair_simulator(device);
      batched_csd = acquire_full_csd(sim, axis, axis);
    });
    json.begin_scenario("probe_path_simulator_100px");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("scalar_seconds", scalar_s);
    json.field("batched_seconds", batched_s);
    json.field("batched_speedup", scalar_s / batched_s);
    json.field("results_identical", scalar_csd.grid() == batched_csd.grid());
    json.end_scenario();
  }
  {
    DeviceSimulator sim = make_pair_simulator(device);
    const Csd recorded = sim.generate_csd(axis, axis, "probe_path");
    Csd scalar_csd, batched_csd;
    const double scalar_s = time_best(3, [&] {
      CsdPlayback playback(recorded);
      scalar_csd = acquire_scalar(playback);
    });
    const double batched_s = time_best(3, [&] {
      CsdPlayback playback(recorded);
      batched_csd = acquire_full_csd(playback, axis, axis);
    });
    json.begin_scenario("probe_path_playback_100px");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("scalar_seconds", scalar_s);
    json.field("batched_seconds", batched_s);
    json.field("batched_speedup", scalar_s / batched_s);
    json.field("results_identical", scalar_csd.grid() == batched_csd.grid());
    json.end_scenario();
  }
}

// PR 3: what the ExtractionEngine façade costs over calling the extraction
// entry points directly (request validation + backend construction +
// report assembly), and what batch submission buys.
void bench_engine_overhead(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 64);

  const double direct_s = time_best(5, [&] {
    DeviceSimulator sim = make_pair_simulator(device);
    (void)run_fast_extraction(sim, axis, axis);
  });

  ExtractionEngine engine;
  ExtractionRequest request;
  request.device.device = &device;
  request.device.pixels_per_axis = 64;
  const double engine_s = time_best(5, [&] { (void)engine.run(request); });

  // Batch of one request per nearest-neighbour method/seed combination.
  std::vector<ExtractionRequest> batch;
  for (std::uint64_t seed = 42; seed < 46; ++seed) {
    ExtractionRequest r = request;
    r.device.noise_seed = seed;
    batch.push_back(r);
  }
  const ExtractionEngine serial_engine(EngineOptions{.parallel_batch = false});
  const double batch_serial_s =
      time_best(3, [&] { (void)serial_engine.run_batch(batch); });
  const ExtractionEngine parallel_engine(EngineOptions{.parallel_batch = true});
  const double batch_parallel_s =
      time_best(3, [&] { (void)parallel_engine.run_batch(batch); });

  json.begin_scenario("engine_overhead_fast_64px");
  json.field("direct_seconds", direct_s);
  json.field("engine_seconds", engine_s);
  json.field("overhead_seconds", engine_s - direct_s);
  json.field("overhead_fraction", engine_s / direct_s - 1.0);
  json.field("batch_requests", static_cast<long>(batch.size()));
  json.field("batch_serial_seconds", batch_serial_s);
  json.field("batch_parallel_seconds", batch_parallel_s);
  json.field("batch_parallel_speedup", batch_serial_s / batch_parallel_s);
  json.end_scenario();
}

// PR 4: what the cancellation machinery costs when nothing interrupts. A
// limited AcquisitionContext turns the single-batch 100x100 acquisition into
// row batches with one check (atomic load + steady_clock read) per row; the
// results must stay bit-identical and the overhead on the simulator's
// physics-dominated probe path is expected <= 2%. The playback variant shows
// the worst case (amortized-dispatch floor: lookup-dominated, so fixed
// per-row costs weigh the most).
void bench_cancellation_overhead(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);

  AcquisitionContext context;
  context.cancel = CancelToken::make();  // limited, but never fires

  {
    Csd plain_csd, checked_csd;
    const double plain_s = time_best(7, [&] {
      DeviceSimulator sim = make_pair_simulator(device);
      plain_csd = acquire_full_csd(sim, axis, axis);
    });
    const double checked_s = time_best(7, [&] {
      DeviceSimulator sim = make_pair_simulator(device);
      checked_csd = *acquire_full_csd(sim, axis, axis, context);
    });
    json.begin_scenario("cancellation_check_overhead_100px");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("plain_seconds", plain_s);
    json.field("checked_seconds", checked_s);
    json.field("overhead_fraction", checked_s / plain_s - 1.0);
    json.field("results_identical", plain_csd.grid() == checked_csd.grid());
    json.end_scenario();
  }
  {
    DeviceSimulator sim = make_pair_simulator(device);
    const Csd recorded = sim.generate_csd(axis, axis, "cancel_overhead");
    Csd plain_csd, checked_csd;
    const double plain_s = time_best(7, [&] {
      CsdPlayback playback(recorded);
      plain_csd = acquire_full_csd(playback, axis, axis);
    });
    const double checked_s = time_best(7, [&] {
      CsdPlayback playback(recorded);
      checked_csd = *acquire_full_csd(playback, axis, axis, context);
    });
    json.begin_scenario("cancellation_check_overhead_playback_100px");
    json.field("pixels", static_cast<long>(axis.count() * axis.count()));
    json.field("plain_seconds", plain_s);
    json.field("checked_seconds", checked_s);
    json.field("overhead_fraction", checked_s / plain_s - 1.0);
    json.field("results_identical", plain_csd.grid() == checked_csd.grid());
    json.end_scenario();
  }
}

// PR 4: async JobQueue throughput. N self-contained fast-extraction jobs
// drained through queues pinned to 1 and 4 workers vs a serial engine.run
// loop; uncancelled async reports must be bit-identical to the synchronous
// ones regardless of drain order.
void bench_async_queue(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});

  constexpr int kJobs = 8;
  std::vector<ExtractionRequest> requests;
  for (int i = 0; i < kJobs; ++i) {
    ExtractionRequest request;
    request.device.device = &device;
    request.device.pixels_per_axis = 64;
    request.device.noise_seed = 42 + static_cast<std::uint64_t>(i);
    request.device.white_noise_sigma = 0.02;
    request.label = "throughput-" + std::to_string(i);
    requests.push_back(std::move(request));
  }

  const ExtractionEngine engine;
  std::vector<ExtractionReport> serial(requests.size());
  const double serial_s = time_best(3, [&] {
    for (std::size_t i = 0; i < requests.size(); ++i)
      serial[i] = engine.run(requests[i]);
  });

  auto reports_identical = [&](const std::vector<ExtractionReport>& async) {
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (async[i].status != serial[i].status ||
          async[i].virtual_gates.alpha12 != serial[i].virtual_gates.alpha12 ||
          async[i].virtual_gates.alpha21 != serial[i].virtual_gates.alpha21 ||
          async[i].stats.unique_probes != serial[i].stats.unique_probes ||
          async[i].stats.simulated_seconds != serial[i].stats.simulated_seconds)
        return false;
    }
    return true;
  };

  bool identical = true;
  auto drain_with_pool = [&](ThreadPool& pool) {
    JobQueue queue(EngineOptions{}, &pool);
    std::vector<JobHandle> handles;
    handles.reserve(requests.size());
    for (const auto& request : requests) handles.push_back(queue.submit(request));
    std::vector<ExtractionReport> reports;
    reports.reserve(handles.size());
    for (const auto& handle : handles) reports.push_back(handle.wait());
    identical = identical && reports_identical(reports);
  };
  // Dedicated pools pin the concurrency independently of QVG_THREADS; they
  // live outside the timed region so the scenario measures submit+drain
  // throughput, not thread spawn/join.
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const double queue1_s = time_best(3, [&] { drain_with_pool(pool1); });
  const double queue4_s = time_best(3, [&] { drain_with_pool(pool4); });

  json.begin_scenario("async_queue_throughput_8jobs_64px");
  json.field("jobs", static_cast<long>(kJobs));
  json.field("serial_seconds", serial_s);
  json.field("queue_1worker_seconds", queue1_s);
  json.field("queue_4worker_seconds", queue4_s);
  json.field("queue_4worker_speedup", serial_s / queue4_s);
  json.field("reports_identical", identical);
  json.end_scenario();
}

// PR 5: the serial-async fix, measured end to end. ONE raster-dominated
// Hough job through the JobQueue: before the cooperative scheduler, the
// worker that picked the job up carried t_parallel_depth = 1, so the job's
// 100x100 raster ran inline-serial no matter how many workers the pool had —
// async jobs silently lost all the PR 1 intra-job parallelism that a
// synchronous engine.run enjoys. Now the job's nested parallel_for
// participates in the pool: one async job on a multi-worker pool approaches
// the synchronous *parallel* raster time, not the serial time. The PR 4
// behaviour is reproduced with the parallelism kill switch (which is exactly
// what the forced depth guard amounted to). All four reports must be
// bit-identical (the raster schedule never changes results). Run with
// QVG_THREADS=4 to see the fan-out on multi-core hardware; every variant
// records the effective thread count.
void bench_async_parallel_raster(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});

  ExtractionRequest request;
  request.method = ExtractionMethod::kHoughBaseline;  // full-raster dominated
  request.device.device = &device;
  request.device.pixels_per_axis = 100;
  request.label = "async-raster";

  const ExtractionEngine engine;
  ExtractionReport sync_serial, sync_parallel, async_serial, async_parallel;

  set_parallelism_enabled(false);
  const double sync_serial_s =
      time_best(3, [&] { sync_serial = engine.run(request); });
  set_parallelism_enabled(true);
  const double sync_parallel_s =
      time_best(3, [&] { sync_parallel = engine.run(request); });

  // PR 4 baseline: one queue worker, nested loops forced inline-serial.
  ThreadPool pool1(1);
  set_parallelism_enabled(false);
  const double async_serial_s = time_best(3, [&] {
    JobQueue queue(EngineOptions{}, &pool1);
    async_serial = queue.submit(request).wait();
  });
  set_parallelism_enabled(true);
  // The fix: the job runs on the global pool and its raster rows fan out
  // across that same pool's idle workers.
  const double async_parallel_s = time_best(3, [&] {
    JobQueue queue;
    async_parallel = queue.submit(request).wait();
  });

  auto identical = [&](const ExtractionReport& a, const ExtractionReport& b) {
    return a.status == b.status &&
           a.virtual_gates.alpha12 == b.virtual_gates.alpha12 &&
           a.virtual_gates.alpha21 == b.virtual_gates.alpha21 &&
           a.stats.unique_probes == b.stats.unique_probes &&
           a.stats.simulated_seconds == b.stats.simulated_seconds &&
           a.hough.acquired.grid() == b.hough.acquired.grid();
  };

  json.begin_scenario("async_parallel_raster_1job_100px");
  json.field("pixels", 100L * 100L);
  json.field("sync_serial_seconds", sync_serial_s);
  json.field("sync_parallel_seconds", sync_parallel_s);
  json.field("async_serial_1worker_seconds", async_serial_s);
  json.field("async_parallel_seconds", async_parallel_s);
  json.field("async_speedup_vs_serial_async", async_serial_s / async_parallel_s);
  json.field("async_over_sync_parallel", async_parallel_s / sync_parallel_s);
  json.field("reports_identical", identical(sync_serial, sync_parallel) &&
                                      identical(sync_serial, async_serial) &&
                                      identical(sync_serial, async_parallel));
  json.end_scenario();
}

// PR 5: what priority scheduling buys an interactive request stuck behind a
// bulk re-tuning backlog. One queue worker, kJobs batch jobs saturating it;
// the interactive job is submitted last. Under FIFO submission order
// (everything kNormal) it drains the whole backlog first; under priority
// scheduling it runs as soon as the in-flight job finishes. The latency is
// measured from its submission to its completion, and its report stays
// bit-identical to a synchronous run either way.
void bench_priority_latency(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});

  constexpr int kBacklog = 6;
  std::vector<ExtractionRequest> backlog;
  for (int i = 0; i < kBacklog; ++i) {
    ExtractionRequest request;
    request.device.device = &device;
    request.device.pixels_per_axis = 64;
    request.device.noise_seed = 42 + static_cast<std::uint64_t>(i);
    request.label = "backlog-" + std::to_string(i);
    backlog.push_back(std::move(request));
  }
  ExtractionRequest interactive;
  interactive.device.device = &device;
  interactive.device.pixels_per_axis = 64;
  interactive.device.noise_seed = 7;
  interactive.label = "interactive";

  ThreadPool pool1(1);
  ExtractionReport fifo_report, priority_report;
  auto drain_latency = [&](Priority backlog_priority,
                           Priority interactive_priority,
                           ExtractionReport& out) {
    JobQueue queue(EngineOptions{}, &pool1);
    std::vector<JobHandle> handles;
    handles.reserve(backlog.size());
    for (const auto& request : backlog)
      handles.push_back(
          queue.submit(request, SubmitOptions{.priority = backlog_priority}));
    Stopwatch latency;
    JobHandle urgent = queue.submit(
        interactive, SubmitOptions{.priority = interactive_priority});
    out = urgent.wait();
    const double seconds = latency.elapsed_seconds();
    queue.wait_all();
    return seconds;
  };

  // Best-of-3 on the *returned* latency (time_best would also time the
  // backlog drain after the interactive job finished).
  auto best_latency = [&](Priority backlog_priority,
                          Priority interactive_priority,
                          ExtractionReport& out) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < 3; ++r)
      best = std::min(
          best, drain_latency(backlog_priority, interactive_priority, out));
    return best;
  };
  const double fifo_s =
      best_latency(Priority::kNormal, Priority::kNormal, fifo_report);
  const double priority_s = best_latency(Priority::kBatch,
                                         Priority::kInteractive,
                                         priority_report);

  const ExtractionEngine engine;
  const ExtractionReport direct = engine.run(interactive);

  json.begin_scenario("priority_latency_interactive_under_batch");
  json.field("backlog_jobs", static_cast<long>(kBacklog));
  json.field("fifo_latency_seconds", fifo_s);
  json.field("priority_latency_seconds", priority_s);
  json.field("latency_speedup", fifo_s / priority_s);
  json.field("reports_identical",
             fifo_report.status == priority_report.status &&
                 fifo_report.virtual_gates.alpha12 ==
                     priority_report.virtual_gates.alpha12 &&
                 fifo_report.virtual_gates.alpha12 ==
                     direct.virtual_gates.alpha12 &&
                 fifo_report.stats.unique_probes ==
                     priority_report.stats.unique_probes &&
                 fifo_report.stats.unique_probes == direct.stats.unique_probes);
  json.end_scenario();
}

// PR 6: extraction success under injected transient probe faults. For each
// per-batch fault rate, the same 8 deterministic fault seeds run once with
// the retry/backoff recovery (default policy, 4 attempts) and once with
// retries disabled (max_attempts = 1: the first transient escalates to a
// hard fault). The front pins what recovery is worth: without retries the
// success fraction collapses as the rate grows; with them the extraction
// absorbs the weather at a bounded backoff cost.
void bench_fault_success_vs_rate(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);
  DeviceSimulator sim = make_pair_simulator(device);
  const Csd recorded = sim.generate_csd(axis, axis, "fault_front");

  const ExtractionEngine engine;
  constexpr int kSeeds = 8;
  constexpr std::uint64_t kFirstSeed = 100;  // seeds 100..107, recorded below
  for (const int rate_pct : {0, 5, 10, 20}) {
    int ok_with_retry = 0, ok_without_retry = 0;
    long transients = 0, retries = 0;
    double backoff = 0.0;
    double seconds = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      ExtractionRequest request;
      request.playback.csd = &recorded;
      request.faults.transient_rate = rate_pct / 100.0;
      request.faults.seed = kFirstSeed + static_cast<std::uint64_t>(s);
      Stopwatch w;
      const ExtractionReport with_retry = engine.run(request);
      seconds += w.elapsed_seconds();
      if (with_retry.status.ok()) ++ok_with_retry;
      transients += with_retry.fault_stats.transient_faults;
      retries += with_retry.fault_stats.retries;
      backoff += with_retry.fault_stats.backoff_seconds;

      ExtractionRequest no_retry = request;
      no_retry.retry.max_attempts = 1;
      if (engine.run(no_retry).status.ok()) ++ok_without_retry;
    }
    json.begin_scenario("fault_success_vs_transient_rate_" +
                        std::to_string(rate_pct) + "pct");
    json.field("seeds", static_cast<long>(kSeeds));
    json.field("first_seed", static_cast<long>(kFirstSeed));
    json.field("transient_rate", rate_pct / 100.0);
    json.field("success_with_retry",
               static_cast<double>(ok_with_retry) / kSeeds);
    json.field("success_without_retry",
               static_cast<double>(ok_without_retry) / kSeeds);
    json.field("transients_per_run",
               static_cast<double>(transients) / kSeeds);
    json.field("retries_per_run", static_cast<double>(retries) / kSeeds);
    json.field("backoff_sim_seconds_per_run", backoff / kSeeds);
    json.field("retry_wall_seconds_per_run", seconds / kSeeds);
    json.end_scenario();
  }
}

// PR 6: drift recovery cost. A deterministic telegraph charge jump lands
// after raster batch 8 on a noise-free 100x100 playback; the monitor reports
// one batch later and the raster re-probes only the stale row batch. The
// recovered grid must equal the clean acquisition bit for bit, at a probe
// cost far below the 2x of re-scanning the whole diagram.
void bench_drift_recovery(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);
  DeviceSimulator sim = make_pair_simulator(device);
  const Csd recorded = sim.generate_csd(axis, axis, "drift_recovery");

  CsdPlayback plain_playback(recorded);
  const Csd clean = acquire_full_csd(plain_playback, axis, axis);

  CsdPlayback playback(recorded);
  FaultSchedule schedule;
  schedule.jump_at_batch = 8;
  schedule.jump_magnitude_volts = 3.0 * axis.step();  // 3 px honeycomb shift
  FaultInjectingCurrentSource injected(playback, schedule);
  AcquisitionContext context;
  context.faults = FaultRecorder::make();
  Stopwatch w;
  const Result<Csd> recovered = acquire_full_csd(injected, axis, axis, context);
  const double wall_s = w.elapsed_seconds();

  const long pixels = static_cast<long>(axis.count() * axis.count());
  const FaultStats stats = context.faults.snapshot();
  json.begin_scenario("drift_recovery_raster_100px");
  json.field("pixels", pixels);
  json.field("jump_at_batch", schedule.jump_at_batch);
  json.field("success", recovered.ok());
  json.field("drift_events", stats.drift_events);
  json.field("reacquired_rows", stats.reacquired_rows);
  json.field("rows_total", static_cast<long>(axis.count()));
  json.field("probes_issued", playback.probe_count());
  json.field("full_reacquisition_probes", 2 * pixels);
  json.field("recovery_probe_overhead_fraction",
             static_cast<double>(playback.probe_count() - pixels) /
                 static_cast<double>(pixels));
  json.field("identical_to_clean",
             recovered.ok() && recovered->grid() == clean.grid());
  json.field("wall_seconds", wall_s);
  json.end_scenario();
}

// PR 6: what the fault-recovery plumbing costs when nothing ever fails. The
// full fault path (zero-fault injector + armed recorder + probe_with_retry
// around every row batch) vs the PR 4 checked path vs the plain single-batch
// acquisition, on the simulator's physics-dominated raster. All three grids
// must be bit-identical and the try path is expected within ~2% of checked.
void bench_retry_overhead_zero_fault(JsonWriter& json) {
  const BuiltDevice device = build_dot_array(DotArrayParams{});
  const VoltageAxis axis = scan_axis(device, 100);

  Csd plain_csd, checked_csd, fault_path_csd;
  const double plain_s = time_best(7, [&] {
    DeviceSimulator sim = make_pair_simulator(device);
    plain_csd = acquire_full_csd(sim, axis, axis);
  });
  AcquisitionContext checked_context;
  checked_context.cancel = CancelToken::make();  // limited, never fires
  const double checked_s = time_best(7, [&] {
    DeviceSimulator sim = make_pair_simulator(device);
    checked_csd = *acquire_full_csd(sim, axis, axis, checked_context);
  });
  FaultStats stats;
  const double fault_path_s = time_best(7, [&] {
    DeviceSimulator sim = make_pair_simulator(device);
    FaultInjectingCurrentSource injected(sim, FaultSchedule{});
    AcquisitionContext context;
    context.faults = FaultRecorder::make();
    fault_path_csd = *acquire_full_csd(injected, axis, axis, context);
    stats = context.faults.snapshot();
  });

  json.begin_scenario("retry_overhead_zero_fault_100px");
  json.field("pixels", static_cast<long>(axis.count() * axis.count()));
  json.field("plain_seconds", plain_s);
  json.field("checked_seconds", checked_s);
  json.field("fault_path_seconds", fault_path_s);
  json.field("fault_path_over_plain_fraction", fault_path_s / plain_s - 1.0);
  json.field("fault_path_over_checked_fraction",
             fault_path_s / checked_s - 1.0);
  json.field("faults_absorbed", stats.transient_faults + stats.drift_events);
  json.field("results_identical", plain_csd.grid() == checked_csd.grid() &&
                                      plain_csd.grid() == fault_path_csd.grid());
  json.end_scenario();
}

// PR 2: the 12-diagram qflow suite built serially vs fanned out over the
// pool (each diagram is deterministic given its spec).
void bench_suite_generation(JsonWriter& json) {
  std::vector<QflowBenchmark> serial_suite, parallel_suite;
  const double serial_s =
      time_best(2, [&] { serial_suite = build_qflow_suite(false); });
  const double parallel_s =
      time_best(2, [&] { parallel_suite = build_qflow_suite(true); });

  long pixels = 0;
  for (const auto& benchmark : serial_suite)
    pixels += static_cast<long>(benchmark.csd.width() *
                                benchmark.csd.height());
  bool identical = serial_suite.size() == parallel_suite.size();
  for (std::size_t i = 0; identical && i < serial_suite.size(); ++i)
    identical = serial_suite[i].csd.grid() == parallel_suite[i].csd.grid();

  json.begin_scenario("suite_generation_12csd");
  json.field("diagrams", static_cast<long>(serial_suite.size()));
  json.field("pixels", pixels);
  json.field("serial_seconds", serial_s);
  json.field("parallel_seconds", parallel_s);
  json.field("parallel_speedup", serial_s / parallel_s);
  json.field("serial_parallel_identical", identical);
  json.end_scenario();
}

/// Max ULP distance between two equal-sized grids of non-negative values.
std::uint64_t max_ulp(const GridD& a, const GridD& b) {
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    std::memcpy(&ua, &a.raw()[i], sizeof(double));
    std::memcpy(&ub, &b.raw()[i], sizeof(double));
    worst = std::max(worst, ua > ub ? ua - ub : ub - ua);
  }
  return worst;
}

// PR 7: per-kernel before/after for the SIMD + cache-blocking pass, all
// single-threaded so the numbers capture the single-thread gap the pass
// closes (serial-vs-parallel equivalence is pinned by the older scenarios).
// Every scenario records whether the fast result is bit-identical to its
// reference; the sobel magnitude records its max ULP distance instead (the
// one documented tolerance case: sqrt-form magnitude vs hypot).
void bench_kernel_sweep(JsonWriter& json) {
  set_parallelism_enabled(false);
  const GridD image = make_test_image(200);

  {
    const Kernel2D mask = paper_mask_x();
    GridD ref, fast;
    const double ref_s =
        time_best(5, [&] { ref = correlate_reference(image, mask); });
    const double fast_s = time_best(5, [&] { fast = correlate(image, mask); });
    json.begin_scenario("kernel_correlate_200px");
    json.field("reference_ms", ref_s * 1e3);
    json.field("simd_ms", fast_s * 1e3);
    json.field("speedup", ref_s / fast_s);
    json.field("results_identical", ref == fast);
    json.end_scenario();
  }

  {
    const auto taps = gaussian_taps(1.4);
    GridD ref, fast;
    const double ref_s = time_best(
        5, [&] { ref = correlate_separable_reference(image, taps, taps); });
    const double fast_s =
        time_best(5, [&] { fast = correlate_separable(image, taps, taps); });
    json.begin_scenario("kernel_separable_200px");
    json.field("taps", static_cast<long>(taps.size()));
    json.field("reference_ms", ref_s * 1e3);
    json.field("simd_ms", fast_s * 1e3);
    json.field("speedup", ref_s / fast_s);
    json.field("results_identical", ref == fast);
    json.end_scenario();
  }

  {
    GradientField ref, fast;
    const double ref_s =
        time_best(5, [&] { ref = sobel_gradients_reference(image); });
    const double fast_s = time_best(5, [&] { fast = sobel_gradients(image); });
    json.begin_scenario("kernel_sobel_200px");
    json.field("reference_ms", ref_s * 1e3);
    json.field("simd_ms", fast_s * 1e3);
    json.field("speedup", ref_s / fast_s);
    json.field("gradients_identical", ref.gx == fast.gx && ref.gy == fast.gy);
    json.field("magnitude_max_ulp",
               static_cast<long>(max_ulp(ref.magnitude, fast.magnitude)));
    json.end_scenario();
  }

  for (std::size_t n : {100u, 200u}) {
    const GridD img = make_test_image(n);
    GridU8 ref, fast;
    const double ref_s = time_best(5, [&] { ref = canny_reference(img); });
    const double fast_s = time_best(5, [&] { fast = canny(img); });
    json.begin_scenario("kernel_canny_" + std::to_string(n) + "px");
    json.field("reference_ms", ref_s * 1e3);
    json.field("simd_ms", fast_s * 1e3);
    json.field("speedup", ref_s / fast_s);
    json.field("edges_identical", ref == fast);
    json.end_scenario();
  }

  {
    const GridU8 edges = canny(image);
    HoughOptions flat;
    flat.accumulate_mode = HoughAccumulateMode::kFlat;
    HoughOptions blocked;
    blocked.accumulate_mode = HoughAccumulateMode::kBlocked;
    HoughAccumulator ref, fast;
    const double ref_s =
        time_best(5, [&] { ref = hough_accumulate(edges, flat); });
    const double fast_s =
        time_best(5, [&] { fast = hough_accumulate(edges, blocked); });
    long edge_points = 0;
    for (auto v : edges.raw()) edge_points += v != 0 ? 1 : 0;
    json.begin_scenario("kernel_hough_200px");
    json.field("edge_points", edge_points);
    json.field("flat_ms", ref_s * 1e3);
    json.field("blocked_ms", fast_s * 1e3);
    json.field("speedup", ref_s / fast_s);
    json.field("votes_identical", ref.votes == fast.votes);
    json.end_scenario();
  }

  // Solver bound batches (SIMD completion bounds inside branch-and-bound,
  // SIMD coupling updates inside the delta-ICM greedy) at 5-7 dots. The
  // "before" is the same algorithm with its pre-PR 7 scalar recurrences —
  // not separately compilable, so the pin here is exactness vs the unpruned
  // enumeration / copy-based greedy, with timings that extend the
  // solver_scaling trajectory.
  for (std::size_t n_dots : {5u, 6u, 7u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    Rng rng(131 + n_dots);
    const int solves = n_dots >= 7 ? 10 : 30;
    std::vector<std::vector<double>> drive_sets;
    std::vector<double> voltages(n_dots);
    for (int s = 0; s < solves; ++s) {
      for (auto& v : voltages) v = rng.uniform(0.0, 0.06);
      drive_sets.push_back(device.model.dot_drives(voltages));
    }

    IncrementalGroundStateSolver solver(device.model);
    const double bb_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)solver.solve(d, 4, nullptr, ExhaustiveStrategy::kBranchAndBound);
    });
    const double greedy_s = time_best(3, [&] {
      for (const auto& d : drive_sets)
        (void)ground_state_greedy(device.model, d, 4);
    });
    bool bb_identical = true;
    bool greedy_identical = true;
    for (const auto& d : drive_sets) {
      if (solver.solve(d, 4, nullptr, ExhaustiveStrategy::kBranchAndBound) !=
          solver.solve(d, 4, nullptr, ExhaustiveStrategy::kFullEnumeration))
        bb_identical = false;
      if (ground_state_greedy(device.model, d, 4) !=
          ground_state_greedy_reference(device.model, d, 4))
        greedy_identical = false;
    }
    json.begin_scenario("kernel_solver_" + std::to_string(n_dots) + "dot");
    json.field("solves", static_cast<long>(solves));
    json.field("bb_us_per_solve", bb_s / solves * 1e6);
    json.field("greedy_us_per_solve", greedy_s / solves * 1e6);
    json.field("bb_matches_full_enumeration", bb_identical);
    json.field("greedy_matches_reference", greedy_identical);
    json.end_scenario();
  }

  set_parallelism_enabled(true);
}

// PR 9: the solver frontier at 8-16 dots — annealing and tabu vs the PR 2
// multistart-greedy ablation baseline, on random near-transition drive sets.
// At 8 dots branch-and-bound is still tractable, so the exact-recovery
// fraction of every stochastic strategy is measured against ground truth; at
// 12 and 16 dots quality is mean excess energy over the best state any
// strategy found. The anneal restart ladder (1/2/4 restarts) traces the
// quality-vs-time front one knob controls.
void bench_solver_frontier(JsonWriter& json) {
  for (std::size_t n_dots : {8u, 12u, 16u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);
    Rng rng(900 + n_dots);
    const int solves = n_dots == 8 ? 16 : n_dots == 12 ? 10 : 6;
    std::vector<std::vector<double>> drive_sets;
    std::vector<double> voltages(n_dots);
    for (int s = 0; s < solves; ++s) {
      for (auto& v : voltages) v = rng.uniform(0.0, 0.06);
      drive_sets.push_back(device.model.dot_drives(voltages));
    }

    struct Variant {
      std::string label;
      FrontierOptions options;
    };
    std::vector<Variant> variants;
    {
      FrontierOptions greedy;
      greedy.strategy = FrontierStrategy::kMultistartGreedy;
      greedy.restarts = 8;
      variants.push_back({"greedy8", greedy});
      FrontierOptions anneal;  // production defaults
      variants.push_back({"anneal", anneal});
      FrontierOptions tabu;
      tabu.strategy = FrontierStrategy::kTabu;
      variants.push_back({"tabu", tabu});
      for (const int restarts : {1, 2, 4}) {
        FrontierOptions ladder;
        ladder.restarts = restarts;
        variants.push_back({"anneal_r" + std::to_string(restarts), ladder});
      }
    }

    // Exact ground-state energies via branch-and-bound where tractable.
    std::vector<double> exact_energy;
    double bb_s = 0.0;
    if (n_dots == 8) {
      IncrementalGroundStateSolver solver(device.model);
      bb_s = time_best(2, [&] {
        for (const auto& d : drive_sets)
          (void)solver.solve(d, 4, nullptr,
                             ExhaustiveStrategy::kBranchAndBound);
      });
      for (const auto& d : drive_sets)
        exact_energy.push_back(device.model.energy(
            solver.solve(d, 4, nullptr, ExhaustiveStrategy::kBranchAndBound),
            d));
    }

    // Energies per variant per drive set (outside the timed loops), plus the
    // best state any variant found — the 12/16-dot quality reference.
    std::vector<std::vector<double>> energies(variants.size());
    std::vector<double> best_energy(drive_sets.size(),
                                    std::numeric_limits<double>::infinity());
    std::vector<std::uint64_t> moves(variants.size(), 0);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (std::size_t s = 0; s < drive_sets.size(); ++s) {
        SolveStats stats;
        const double e = device.model.energy(
            ground_state_frontier(device.model, drive_sets[s], 4,
                                  variants[v].options, &stats),
            drive_sets[s]);
        energies[v].push_back(e);
        best_energy[s] = std::min(best_energy[s], e);
        moves[v] += stats.moves_evaluated;
      }
    }
    if (!exact_energy.empty())
      for (std::size_t s = 0; s < drive_sets.size(); ++s)
        best_energy[s] = std::min(best_energy[s], exact_energy[s]);

    json.begin_scenario("solver_frontier_" + std::to_string(n_dots) + "dot");
    json.field("solves", static_cast<long>(solves));
    if (n_dots == 8) json.field("bb_us_per_solve", bb_s / solves * 1e6);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const auto& variant = variants[v];
      const double wall_s = time_best(2, [&] {
        for (const auto& d : drive_sets)
          (void)ground_state_frontier(device.model, d, 4, variant.options);
      });
      json.field(variant.label + "_us_per_solve", wall_s / solves * 1e6);
      json.field(variant.label + "_moves_per_solve",
                 static_cast<double>(moves[v]) / solves);
      // Exact recovery against B&B truth at 8 dots; mean excess energy over
      // the best-of-all state above (0 = matched the best anyone found).
      int exact = 0;
      double excess = 0.0;
      for (std::size_t s = 0; s < drive_sets.size(); ++s) {
        const double reference =
            exact_energy.empty() ? best_energy[s] : exact_energy[s];
        if (energies[v][s] <= reference + 1e-12) ++exact;
        excess += energies[v][s] - best_energy[s];
      }
      if (n_dots == 8)
        json.field(variant.label + "_exact_fraction",
                   static_cast<double>(exact) / solves);
      json.field(variant.label + "_mean_excess_energy", excess / solves);
    }
    json.end_scenario();
  }
}

// PR 9: the sharded 10-16 dot array lane. The n-1 pair extractions run
// serially, one-shard-per-pair, and in 4 round-robin shards; all three must
// compose bit-identically (the pin), and the sharded walks show the
// wall-clock win per-shard ProbeCaches buy (no cross-shard lock contention).
void bench_array_sharded(JsonWriter& json) {
  for (std::size_t n_dots : {10u, 16u}) {
    DotArrayParams params;
    params.n_dots = n_dots;
    const BuiltDevice device = build_dot_array(params);

    ArrayExtractionOptions serial_opt;
    serial_opt.pixels_per_axis = 32;
    serial_opt.parallel = false;
    serial_opt.shards = 1;
    ArrayExtractionOptions per_pair_opt = serial_opt;
    per_pair_opt.parallel = true;
    per_pair_opt.shards = 0;  // one shard per pair
    ArrayExtractionOptions sharded_opt = per_pair_opt;
    sharded_opt.shards = 4;

    ArrayExtractionResult serial, per_pair, sharded;
    const double serial_s =
        time_best(2, [&] { serial = extract_array_virtualization(device, serial_opt); });
    const double per_pair_s = time_best(
        2, [&] { per_pair = extract_array_virtualization(device, per_pair_opt); });
    const double sharded_s = time_best(
        2, [&] { sharded = extract_array_virtualization(device, sharded_opt); });

    json.begin_scenario("array_sharded_" + std::to_string(n_dots) + "dot");
    json.field("pairs", static_cast<long>(n_dots - 1));
    json.field("pixels_per_axis", 32L);
    json.field("success", serial.status.ok());
    json.field("unique_probes", serial.total_stats.unique_probes);
    json.field("serial_seconds", serial_s);
    json.field("per_pair_shard_seconds", per_pair_s);
    json.field("sharded4_seconds", sharded_s);
    json.field("sharded4_speedup_vs_serial", serial_s / sharded_s);
    json.field("sharded4_shards", static_cast<long>(sharded.shards.size()));
    json.field("serial_sharded_identical",
               array_results_identical(serial, sharded) &&
                   array_results_identical(serial, per_pair));
    json.field("band_max_error", serial.band_max_error);
    json.end_scenario();
  }
}

// --- PR 8: wire API served over real loopback sockets ---------------------

using BenchClock = std::chrono::steady_clock;

double us_since(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::micro>(BenchClock::now() - t0)
      .count();
}

/// The standard small served job: 64px fast extraction on a jittered
/// double dot — sub-millisecond of engine work so serving overhead shows.
wire::WireRequest served_request(const std::string& label) {
  wire::WireRequest r;
  r.method = ExtractionMethod::kFast;
  r.backend = wire::WireBackendKind::kDevice;
  r.device.params.n_dots = 2;
  r.device.params.cross_ratio = 0.25;
  r.device.params.jitter = 0.05;
  r.device.has_jitter = true;
  r.device.jitter_seed = 7;
  r.device.noise_seed = 123;
  r.device.pixels_per_axis = 64;
  r.device.white_noise_sigma = 0.02;
  r.label = label;
  return r;
}

/// POST a wire request; returns the HTTP status, job id via out-param.
int served_submit(std::uint16_t port, const wire::WireRequest& request,
                  const std::string& query, std::size_t* job_id) {
  const std::vector<std::uint8_t> bytes = wire::encode(request);
  Result<server::ClientResponse> response = server::http_call(
      port, "POST", "/v1/jobs" + query,
      {reinterpret_cast<const char*>(bytes.data()), bytes.size()});
  if (!response.ok()) return -1;
  if (response.value().status == 200 && job_id != nullptr) {
    Result<wire::JsonValue> doc =
        wire::parse_json(response.value().body);
    if (doc.ok())
      if (const wire::JsonValue* job = doc.value().find("job"))
        *job_id = static_cast<std::size_t>(job->as_u64());
  }
  return response.value().status;
}

double bench_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (rank - double(lo));
}

void bench_server_submit_latency(JsonWriter& json) {
  server::ExtractionServer srv;
  if (!srv.start().ok()) return;
  for (int i = 0; i < 4; ++i) {  // warm the accept path and engine caches
    std::size_t id = 0;
    (void)served_submit(srv.port(), served_request("warmup"), "", &id);
    (void)server::http_call(srv.port(), "GET",
                            "/v1/jobs/" + std::to_string(id) + "?wait=1");
  }

  constexpr int kJobs = 32;
  std::vector<double> submit_us, first_event_us, report_us;
  for (int i = 0; i < kJobs; ++i) {
    const BenchClock::time_point t0 = BenchClock::now();
    std::size_t id = 0;
    if (served_submit(srv.port(), served_request("lat"), "", &id) != 200)
      continue;
    submit_us.push_back(us_since(t0));
    // The event log replays from the start, so subscribing after submit
    // still times the first *produced* event relative to the submit call.
    server::SseClient sse;
    if (sse.connect(srv.port(), "/v1/jobs/" + std::to_string(id) + "/events")
            .ok()) {
      Result<std::optional<std::string>> event = sse.next_event();
      if (event.ok() && event.value().has_value())
        first_event_us.push_back(us_since(t0));
      sse.close();
    }
    Result<server::ClientResponse> report = server::http_call(
        srv.port(), "GET", "/v1/jobs/" + std::to_string(id) + "?wait=1");
    if (report.ok() && report.value().status == 200)
      report_us.push_back(us_since(t0));
  }
  srv.stop();

  json.begin_scenario("server_submit_latency_1tenant");
  json.field("jobs", static_cast<long>(kJobs));
  json.field("pixels_per_axis", 64L);
  json.field("submit_us_p50", bench_percentile(submit_us, 0.5));
  json.field("submit_us_p95", bench_percentile(submit_us, 0.95));
  json.field("first_event_us_p50", bench_percentile(first_event_us, 0.5));
  json.field("first_event_us_p95", bench_percentile(first_event_us, 0.95));
  json.field("report_us_p50", bench_percentile(report_us, 0.5));
  json.field("report_us_p95", bench_percentile(report_us, 0.95));
  json.end_scenario();
}

void bench_server_fairness(JsonWriter& json) {
  // A single-worker pool serialises dispatch so the deficit-weighted order
  // is exactly observable; equal open-loop backlogs keep every tenant
  // saturated until the heaviest (first) one drains.
  ThreadPool pool(1);
  server::ServerOptions options;
  options.pool = &pool;
  server::ExtractionServer srv(options);
  srv.configure_tenant("alpha", {.weight = 3.0});
  srv.configure_tenant("beta", {.weight = 2.0});
  srv.configure_tenant("gamma", {.weight = 1.0});
  if (!srv.start().ok()) return;

  constexpr int kJobsPerTenant = 48;
  const BenchClock::time_point t0 = BenchClock::now();
  for (int i = 0; i < kJobsPerTenant; ++i)
    for (const char* tenant : {"alpha", "beta", "gamma"})
      (void)served_submit(srv.port(), served_request(tenant),
                          std::string("?tenant=") + tenant, nullptr);

  // Sample dispatch shares while all three tenants are still backlogged:
  // alpha (share 1/2) drains first, at ~2*kJobsPerTenant completions —
  // snapshot at half that.
  double share_alpha = 0, share_beta = 0, share_gamma = 0, max_rel_error = 0;
  for (;;) {
    Result<server::ClientResponse> response =
        server::http_call(srv.port(), "GET", "/v1/stats");
    if (!response.ok() || response.value().status != 200) break;
    Result<wire::JsonValue> doc =
        wire::parse_json(response.value().body);
    if (!doc.ok()) break;
    const wire::JsonValue* completed = doc.value().find("completed");
    if (completed != nullptr &&
        completed->as_u64() >= static_cast<std::uint64_t>(kJobsPerTenant)) {
      const wire::JsonValue* tenants = doc.value().find("tenants");
      if (tenants == nullptr) break;
      double dispatched_sum = 0, weight_sum = 0;
      for (const wire::JsonValue& row : tenants->items()) {
        dispatched_sum += double(row.find("dispatched")->as_u64());
        weight_sum += row.find("weight")->as_double();
      }
      for (const wire::JsonValue& row : tenants->items()) {
        const double share =
            double(row.find("dispatched")->as_u64()) / dispatched_sum;
        const double expected = row.find("weight")->as_double() / weight_sum;
        max_rel_error =
            std::max(max_rel_error, std::abs(share - expected) / expected);
        const std::string name = row.find("tenant")->as_string();
        (name == "alpha" ? share_alpha
                         : name == "beta" ? share_beta : share_gamma) = share;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  srv.queue().wait_all();
  const double total_seconds = us_since(t0) * 1e-6;
  srv.stop();

  json.begin_scenario("server_fairness_3tenants_weighted");
  json.field("jobs_per_tenant", static_cast<long>(kJobsPerTenant));
  json.field("weight_alpha", 3.0);
  json.field("weight_beta", 2.0);
  json.field("weight_gamma", 1.0);
  json.field("share_alpha", share_alpha);
  json.field("share_beta", share_beta);
  json.field("share_gamma", share_gamma);
  json.field("max_share_rel_error", max_rel_error);
  json.field("within_10pct_of_weights", max_rel_error <= 0.10);
  json.field("drained_jobs_per_sec", 3.0 * kJobsPerTenant / total_seconds);
  json.end_scenario();
}

void bench_server_load_shedding(JsonWriter& json) {
  ThreadPool pool(1);
  server::ServerOptions options;
  options.pool = &pool;
  server::ExtractionServer srv(options);
  srv.configure_tenant("burst", {.weight = 1.0, .max_pending = 8});
  if (!srv.start().ok()) return;

  constexpr int kJobs = 100;
  long accepted = 0, shed = 0;
  std::vector<double> shed_us;
  for (int i = 0; i < kJobs; ++i) {
    const BenchClock::time_point t0 = BenchClock::now();
    const int status = served_submit(srv.port(), served_request("burst"),
                                     "?tenant=burst", nullptr);
    if (status == 200) {
      ++accepted;
    } else if (status == 503) {
      ++shed;
      shed_us.push_back(us_since(t0));
    }
  }
  srv.queue().wait_all();
  srv.stop();

  json.begin_scenario("server_load_shedding");
  json.field("jobs_offered", static_cast<long>(kJobs));
  json.field("max_pending", 8L);
  json.field("accepted", accepted);
  json.field("shed_503", shed);
  json.field("shed_response_us_p50", bench_percentile(shed_us, 0.5));
  json.field("shed_response_us_p95", bench_percentile(shed_us, 0.95));
  json.end_scenario();
}

// PR 10: the instrument-driver acquisition pipeline. A 100x100 playback
// raster goes out as 20 whole-row batches over a wall-clock transport link;
// the synchronous-submission lane (io_depth = 1) pays the full command
// latency per batch, the pipelined lane (io_depth = 4) overlaps it across
// in-flight transfers. Results must stay bit-identical — only the wall
// clock moves.
void bench_driver_latency_sweep(JsonWriter& json) {
  const Csd recorded = [] {
    const BuiltDevice device = build_dot_array(DotArrayParams{});
    const VoltageAxis axis = scan_axis(device, 100);
    DeviceSimulator sim = make_pair_simulator(device);
    return sim.generate_csd(axis, axis, "driver_latency");
  }();

  auto acquire = [&](long io_depth, double latency_us) {
    AcquisitionContext context;
    context.transport.io_depth = io_depth;
    context.transport.latency_us = latency_us;
    context.transport.wall_clock = true;
    CsdPlayback playback(recorded);
    return *acquire_full_csd(playback, recorded.x_axis(), recorded.y_axis(),
                             context);
  };

  for (const double latency_us : {1000.0, 5000.0}) {
    Csd sync_csd, pipelined_csd;
    const double sync_s =
        time_best(3, [&] { sync_csd = acquire(1, latency_us); });
    const double pipelined_s =
        time_best(3, [&] { pipelined_csd = acquire(4, latency_us); });
    json.begin_scenario("driver_latency_sweep_100px_" +
                        std::to_string(static_cast<long>(latency_us)) + "us");
    json.field("pixels",
               static_cast<long>(recorded.width() * recorded.height()));
    json.field("latency_us", latency_us);
    json.field("sync_seconds", sync_s);
    json.field("pipelined_seconds", pipelined_s);
    json.field("speedup", sync_s / pipelined_s);
    json.field("results_identical", sync_csd.grid() == pipelined_csd.grid());
    json.end_scenario();
  }
}

// PR 10: cancellation reaches the driver boundary. A raster rides a
// serialized link whose transfers take ~20 ms each; the cancel fires
// mid-raster and the job must stop within roughly one transfer (plus poll
// jitter), not run the remaining transfers out.
void bench_driver_cancel_latency(JsonWriter& json) {
  const Csd recorded = [] {
    const BuiltDevice device = build_dot_array(DotArrayParams{});
    const VoltageAxis axis = scan_axis(device, 100);
    DeviceSimulator sim = make_pair_simulator(device);
    return sim.generate_csd(axis, axis, "driver_cancel");
  }();
  constexpr double kTransferSeconds = 0.020;  // 500-point batch at 25k pts/s
  constexpr int kReps = 5;

  std::vector<double> cancel_to_stop(kReps);
  bool always_cancelled = true;
  for (int rep = 0; rep < kReps; ++rep) {
    AcquisitionContext context;
    context.cancel = CancelToken::make();
    context.transport.io_depth = 2;
    context.transport.bandwidth = 500.0 / kTransferSeconds;
    context.transport.wall_clock = true;

    std::chrono::steady_clock::time_point cancelled_at;
    std::thread canceller([&, token = context.cancel]() mutable {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      cancelled_at = std::chrono::steady_clock::now();
      token.cancel();
    });
    CsdPlayback playback(recorded);
    const Result<Csd> result = acquire_full_csd(
        playback, recorded.x_axis(), recorded.y_axis(), context);
    const auto stopped_at = std::chrono::steady_clock::now();
    canceller.join();
    always_cancelled &=
        result.status().code() == ErrorCode::kCancelled;
    cancel_to_stop[rep] =
        std::chrono::duration<double>(stopped_at - cancelled_at).count();
  }

  std::sort(cancel_to_stop.begin(), cancel_to_stop.end());
  json.begin_scenario("driver_cancel_latency");
  json.field("transfer_seconds", kTransferSeconds);
  json.field("cancel_to_stop_s_best", cancel_to_stop.front());
  json.field("cancel_to_stop_s_p50", cancel_to_stop[kReps / 2]);
  json.field("cancel_to_stop_s_worst", cancel_to_stop.back());
  json.field("stopped_within_one_transfer",
             cancel_to_stop.back() <= kTransferSeconds * 1.5);
  json.field("always_cancelled", always_cancelled);
  json.end_scenario();
}

/// Scenario families, runnable individually via the optional filter
/// argument (substring match on the family name).
struct BenchFamily {
  const char* name;
  void (*run)(JsonWriter&);
};

constexpr BenchFamily kFamilies[] = {
    {"dense_raster", bench_dense_raster},
    {"micro_solver", bench_solver},
    {"solver_scaling", bench_solver_scaling},
    {"imgproc", bench_imgproc},
    {"table1", bench_extraction},
    {"scaling_array", bench_scaling},
    {"array_scaling", bench_array_scaling},
    {"suite_generation", bench_suite_generation},
    {"probe_path", bench_probe_path},
    {"engine_overhead", bench_engine_overhead},
    {"cancellation_overhead", bench_cancellation_overhead},
    {"async_queue", bench_async_queue},
    {"async_parallel_raster", bench_async_parallel_raster},
    {"priority_latency", bench_priority_latency},
    {"fault_success", bench_fault_success_vs_rate},
    {"drift_recovery", bench_drift_recovery},
    {"retry_overhead", bench_retry_overhead_zero_fault},
    {"kernel_sweep", bench_kernel_sweep},
    {"solver_frontier", bench_solver_frontier},
    {"array_sharded", bench_array_sharded},
    {"server_submit_latency", bench_server_submit_latency},
    {"server_fairness", bench_server_fairness},
    {"server_load_shedding", bench_server_load_shedding},
    {"driver_latency_sweep", bench_driver_latency_sweep},
    {"driver_cancel", bench_driver_cancel_latency},
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_PR10.json";
  const std::string filter = argc > 2 ? argv[2] : "";

  int matched = 0;
  for (const BenchFamily& family : kFamilies)
    if (std::string(family.name).find(filter) != std::string::npos) ++matched;
  if (matched == 0) {
    std::cerr << "no scenario family matches '" << filter
              << "'; available families:\n";
    for (const BenchFamily& family : kFamilies)
      std::cerr << "  " << family.name << "\n";
    return 1;
  }

  JsonWriter json;
  json.out.precision(6);
  json.begin();
  for (const BenchFamily& family : kFamilies) {
    if (std::string(family.name).find(filter) == std::string::npos) continue;
    family.run(json);
  }
  json.end();

  std::ofstream file(out_path);
  if (!file) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  file << json.out.str();
  std::cout << json.out.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
